"""NPB ``sp`` — scalar-pentadiagonal ADI solver.

Same ADI skeleton as bt (RHS stencil nests, per-direction line solves, add)
with an extra invert/scaling phase. ``sp`` is the paper's headline win:
Kremlin's plan beat the third-party MANUAL version by **1.85×**, because
"Kremlin was able to identify parallelism that was missed in the MANUAL
version ... Kremlin recommended a coarse-grained parallelization, requiring
privatization and refactoring" (§6.2). We reproduce that by giving MANUAL
the inner (fine-grained) loops of the RHS nests and *no* annotation on the
eta-direction solve at all, while Kremlin's planner finds every outer loop
including the eta solve.
"""

from repro.bench_suite.registry import Benchmark

SOURCE = """
// NPB SP kernel (scaled): pentadiagonal ADI solver.
int N = 24;
int NSTEPS = 3;

float u[24][24];
float rhs[24][24];
float forcing[24][24];
float tmp[24][24];
float speed[24][24];

void compute_rhs() {
  for (int i = 2; i < N - 2; i++) {
    for (int j = 2; j < N - 2; j++) {
      rhs[i][j] = forcing[i][j]
                + 0.35 * (u[i + 1][j] - 2.0 * u[i][j] + u[i - 1][j])
                + 0.05 * (u[i + 2][j] - 2.0 * u[i][j] + u[i - 2][j]);
    }
  }
  for (int i = 2; i < N - 2; i++) {
    for (int j = 2; j < N - 2; j++) {
      rhs[i][j] = rhs[i][j]
                + 0.35 * (u[i][j + 1] - 2.0 * u[i][j] + u[i][j - 1])
                + 0.05 * (u[i][j + 2] - 2.0 * u[i][j] + u[i][j - 2]);
    }
  }
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      speed[i][j] = sqrt(fabs(u[i][j]) + 0.25);
      rhs[i][j] = rhs[i][j] * 0.8 / speed[i][j];
    }
  }
}

void txinvr() {
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      rhs[i][j] = rhs[i][j] * (1.0 + 0.1 * speed[i][j]);
    }
  }
}

void x_solve() {
  // xi-direction pentadiagonal sweeps: DOALL across j lines.
  for (int j = 1; j < N - 1; j++) {
    tmp[0][j] = rhs[0][j];
    tmp[1][j] = rhs[1][j];
    for (int i = 2; i < N - 2; i++) {
      tmp[i][j] = (rhs[i][j] + 0.25 * tmp[i - 1][j]
                 + 0.05 * tmp[i - 2][j]) * 0.6;
    }
  }
  for (int j = 1; j < N - 1; j++) {
    for (int i = N - 4; i >= 1; i--) {
      tmp[i][j] = tmp[i][j] + 0.2 * tmp[i + 1][j];
    }
  }
}

void y_solve() {
  // eta-direction sweeps: DOALL across i lines — this is the coarse
  // parallelism the MANUAL version missed.
  for (int i = 1; i < N - 1; i++) {
    for (int j = 2; j < N - 2; j++) {
      tmp[i][j] = (tmp[i][j] + 0.25 * tmp[i][j - 1]
                 + 0.05 * tmp[i][j - 2]) * 0.6;
    }
  }
  for (int i = 1; i < N - 1; i++) {
    for (int j = N - 4; j >= 1; j--) {
      tmp[i][j] = tmp[i][j] + 0.2 * tmp[i][j + 1];
    }
  }
}

void add() {
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      u[i][j] = u[i][j] + tmp[i][j];
    }
  }
}

int main() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      u[i][j] = (float) ((i * 5 + j * 3) % 16) / 16.0 + 0.5;
      forcing[i][j] = (float) ((i * 2 + j) % 8) / 8.0;
    }
  }
  for (int step = 0; step < NSTEPS; step++) {
    compute_rhs();
    txinvr();
    x_solve();
    y_solve();
    add();
  }
  float checksum = 0.0;
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      checksum += u[i][j];
    }
  }
  print("sp: checksum", checksum);
  return (int) checksum % 1000;
}
"""

BENCHMARK = Benchmark(
    name="sp",
    suite="npb",
    source=SOURCE,
    # The third-party SP: fine-grained inner loops on the RHS/invert nests,
    # outer loops on the xi solve and add — but nothing on the eta solve.
    manual_regions=(
        "compute_rhs#loop2",
        "compute_rhs#loop4",
        "compute_rhs#loop6",
        "txinvr#loop2",
        "x_solve#loop1",
        "x_solve#loop3",
        "add#loop1",
        "add#loop2",
        "compute_rhs#loop1",
        "compute_rhs#loop3",
        "txinvr#loop1",
    ),
    description="scalar-pentadiagonal ADI solver",
)
