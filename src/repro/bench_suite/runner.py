"""Process-pool benchmark sweep.

Profiling a benchmark is CPU-bound single-process work (compile, execute
under the HCPA profiler, aggregate), and the 12-program evaluation suite is
embarrassingly parallel across programs. This module fans the sweep out
over a :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism: workers never render anything. Each worker returns a plain
picklable payload (the serialized parallelism profile plus the run's
scalar results), and the parent rebuilds :class:`SweepResult` objects in
**input order**, so downstream rendering is byte-identical no matter how
many jobs ran or in which order they finished. ``jobs=1`` runs the same
payload round-trip inline without spawning any processes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.hcpa.aggregate import AggregatedProfile, aggregate_profile
from repro.hcpa.serialize import profile_from_json, profile_to_json
from repro.hcpa.summaries import ParallelismProfile


@dataclass
class SweepResult:
    """One profiled benchmark, reconstructed in the parent process."""

    name: str
    profile: ParallelismProfile
    aggregated: AggregatedProfile
    #: static region ids of the benchmark's MANUAL parallelization
    manual_plan: list[int]
    value: object
    instructions_retired: int
    total_cost: int
    #: worker-side wall-clock seconds for compile+profile
    elapsed: float = field(default=0.0)
    #: seconds the static dependence analyzer took during compile
    analysis_seconds: float = field(default=0.0)
    #: pid of the worker process that profiled this benchmark
    worker: int = 0

    @property
    def throughput(self) -> float:
        """Retired instructions per worker-side second."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.instructions_retired / self.elapsed


def _profile_worker(name: str) -> dict:
    """Compile + profile one benchmark; return a picklable payload."""
    from repro.bench_suite.registry import get_benchmark
    from repro.kremlib.profiler import profile_program

    started = time.perf_counter()
    benchmark = get_benchmark(name)
    program = benchmark.compile()
    profile, run = profile_program(program)
    if (
        benchmark.expected_result is not None
        and run.value != benchmark.expected_result
    ):
        raise AssertionError(
            f"{name}: self-check failed: main() returned {run.value}, "
            f"expected {benchmark.expected_result}"
        )
    return {
        "name": name,
        "profile": profile_to_json(profile),
        "value": run.value,
        "instructions_retired": run.instructions_retired,
        "total_cost": run.total_cost,
        "elapsed": time.perf_counter() - started,
        "analysis_seconds": (
            program.analysis.elapsed if program.analysis is not None else 0.0
        ),
        "worker": os.getpid(),
    }


def _rebuild(payload: dict) -> SweepResult:
    from repro.bench_suite.registry import get_benchmark

    profile = profile_from_json(payload["profile"])
    benchmark = get_benchmark(payload["name"])
    by_name = {region.name: region.id for region in profile.regions}
    manual_plan = [by_name[n] for n in benchmark.manual_regions]
    return SweepResult(
        name=payload["name"],
        profile=profile,
        aggregated=aggregate_profile(profile),
        manual_plan=manual_plan,
        value=payload["value"],
        instructions_retired=payload["instructions_retired"],
        total_cost=payload["total_cost"],
        elapsed=payload["elapsed"],
        analysis_seconds=payload.get("analysis_seconds", 0.0),
        worker=payload.get("worker", 0),
    )


def run_suite(
    names: Sequence[str],
    jobs: int = 1,
    progress: Callable[[str, float], None] | None = None,
) -> list[SweepResult]:
    """Profile ``names``, fanning out across ``jobs`` worker processes.

    Results come back in input order regardless of completion order.
    ``progress(name, elapsed_seconds)`` fires as each benchmark finishes
    (in completion order — it is a progress signal, not output).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, len(names)) or 1

    from repro.obs.trace import get_tracer

    started = time.perf_counter()
    payloads: dict[str, dict] = {}
    with get_tracer().span("bench-sweep", jobs=jobs, benchmarks=len(names)):
        if jobs == 1:
            for name in names:
                payload = _profile_worker(name)
                payloads[name] = payload
                if progress is not None:
                    progress(name, payload["elapsed"])
        else:
            from concurrent.futures import ProcessPoolExecutor, as_completed

            from repro.parallel.nesting import mark_pool_worker

            with ProcessPoolExecutor(
                max_workers=jobs, initializer=mark_pool_worker
            ) as pool:
                futures = {
                    pool.submit(_profile_worker, name): name for name in names
                }
                for future in as_completed(futures):
                    payload = future.result()
                    payloads[payload["name"]] = payload
                    if progress is not None:
                        progress(payload["name"], payload["elapsed"])

    results = [_rebuild(payloads[name]) for name in names]
    _record_sweep_metrics(results, jobs, time.perf_counter() - started)
    return results


def _record_sweep_metrics(
    results: list[SweepResult], jobs: int, wall_elapsed: float
) -> None:
    from repro.obs.metrics import get_metrics, metrics_enabled

    if not metrics_enabled():
        return
    registry = get_metrics()
    registry.counter("bench.programs").inc(len(results))
    histogram = registry.histogram("bench.elapsed_seconds")
    analysis_histogram = registry.histogram("bench.analysis_seconds")
    for result in results:
        registry.counter("bench.instructions").inc(
            result.instructions_retired
        )
        histogram.record(result.elapsed)
        analysis_histogram.record(result.analysis_seconds)
        registry.gauge(f"bench.{result.name}.analysis_seconds").set(
            round(result.analysis_seconds, 4)
        )
    registry.gauge("bench.jobs").set(jobs)
    registry.gauge("bench.wall_seconds").set(round(wall_elapsed, 4))
    for worker, busy, share in worker_utilization(results, wall_elapsed):
        registry.gauge(f"bench.worker.{worker}.utilization").set(share)


def worker_utilization(
    results: Sequence[SweepResult], wall_elapsed: float
) -> list[tuple[int, float, float]]:
    """Per-worker busy time for a sweep.

    Returns ``(worker pid, busy seconds, utilization)`` rows sorted by pid,
    where utilization is the fraction of the sweep's wall-clock the worker
    spent profiling. With ``jobs=1`` there is a single row near 1.0; a
    well-balanced ``--jobs N`` sweep shows N rows with similar shares.
    """
    busy: dict[int, float] = {}
    for result in results:
        busy[result.worker] = busy.get(result.worker, 0.0) + result.elapsed
    return [
        (
            worker,
            seconds,
            (seconds / wall_elapsed) if wall_elapsed > 0 else 0.0,
        )
        for worker, seconds in sorted(busy.items())
    ]
