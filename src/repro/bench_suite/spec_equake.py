"""SPEC ``equake`` — earthquake ground-motion FEM simulation.

Kernel structure mirrors equake's time loop: a sparse matrix-vector product
over the stiffness matrix (``smvp`` — outer DOALL over nodes with an inner
per-row reduction), excitation via the source time function, and the
explicit time-integration update loops over displacement components. The
SPEC OMP version annotates the smvp outer loop, its inner loop, the three
displacement loops, the two excitation loops, and three init loops (10
regions); Kremlin keeps the outer loops with real work (6). Paper: MANUAL
10, Kremlin 6 (1.67×).
"""

from repro.bench_suite.registry import Benchmark

SOURCE = """
// SPEC equake kernel (scaled): FEM smvp + explicit time integration.
int NODES = 512;
int NZROW = 6;
int NSTEPS = 6;

float K[3072];
int Kcol[3072];
float disp[512];
float disptplus[512];
float dispt[512];
float vel[512];
float force[512];
float checksum;

void init_matrix() {
  for (int i = 0; i < NODES; i++) {
    for (int k = 0; k < NZROW; k++) {
      int idx = i * NZROW + k;
      Kcol[idx] = (i + k * 29 + (i >> 3)) % NODES;
      K[idx] = 0.05 + (float) ((i * 3 + k * 11) % 17) / 34.0;
    }
  }
}

void init_state() {
  for (int i = 0; i < NODES; i++) {
    disp[i] = 0.0;
    dispt[i] = 0.0;
    disptplus[i] = 0.0;
    vel[i] = 0.0;
  }
}

void smvp() {
  for (int i = 0; i < NODES; i++) {
    float sum = 3.0 * dispt[i];
    for (int k = 0; k < NZROW; k++) {
      int idx = i * NZROW + k;
      sum += K[idx] * dispt[Kcol[idx]];
    }
    force[i] = sum;
  }
}

void add_excitation(int step) {
  float phi = exp(-0.05 * (float) step) * sin(0.3 * (float) step);
  for (int i = 0; i < 32; i++) {
    force[i * 16] += phi * (1.0 + 0.1 * (float) i);
  }
}

void time_integration() {
  for (int i = 0; i < NODES; i++) {
    disptplus[i] = 2.0 * dispt[i] - disp[i] - 0.0004 * force[i];
  }
  for (int i = 0; i < NODES; i++) {
    vel[i] = 0.5 * (disptplus[i] - disp[i]) * 50.0;
  }
  for (int i = 0; i < NODES; i++) {
    disp[i] = dispt[i];
    dispt[i] = disptplus[i];
  }
}

int main() {
  init_matrix();
  init_state();
  for (int step = 0; step < NSTEPS; step++) {
    smvp();
    add_excitation(step);
    time_integration();
  }
  float sum = 0.0;
  for (int i = 0; i < NODES; i++) {
    sum += dispt[i] * dispt[i];
  }
  checksum = sqrt(sum);
  print("equake: checksum", checksum);
  return (int) (checksum * 1000.0) % 1000;
}
"""

BENCHMARK = Benchmark(
    name="equake",
    suite="specomp",
    source=SOURCE,
    # SPEC OMP equake: smvp outer + inner, three integration loops, the
    # excitation loop, two init loops, the init nest inner, and checksum.
    manual_regions=(
        "smvp#loop1",
        "smvp#loop2",
        "time_integration#loop1",
        "time_integration#loop2",
        "time_integration#loop3",
        "add_excitation#loop1",
        "init_matrix#loop1",
        "init_matrix#loop2",
        "init_state#loop1",
        "main#loop2",
    ),
    description="FEM earthquake simulation: smvp + time integration",
)
