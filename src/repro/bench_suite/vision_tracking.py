"""SD-VBS ``tracking`` — the feature-tracking benchmark of Figures 2 and 3.

The paper opens with this program: Figure 3 shows Kremlin's plan for it
(imageBlur's two convolution passes first, then the Sobel derivative passes,
then getInterpPatch), and Figure 2 shows the ``fillFeatures`` triple nest
whose *innermost* loop (over features ``k``) is the only parallel one —
iterations over ``i``/``j`` conditionally overwrite the same per-feature
records, so traditional CPA would wrongly report the outer loops as
parallel, while HCPA localizes the parallelism to the ``k`` loop.
"""

from repro.bench_suite.registry import Benchmark

SOURCE = """
// SD-VBS feature tracking (scaled): blur, gradients, corner response,
// feature selection, patch interpolation.
int ROWS = 40;
int COLS = 40;
int WIN = 2;
int NFEATURES = 24;

float img[40][40];
float blurred[40][40];
float tmp[40][40];
float dx[40][40];
float dy[40][40];
float lambda[40][40];
float features[3][24];
float patch[6][6];
float patchsum;

void imageBlur() {
  // horizontal 1-D gaussian pass
  for (int i = 0; i < ROWS; i++) {
    for (int j = 2; j < COLS - 2; j++) {
      tmp[i][j] = 0.0625 * img[i][j - 2] + 0.25 * img[i][j - 1]
                + 0.375 * img[i][j] + 0.25 * img[i][j + 1]
                + 0.0625 * img[i][j + 2];
    }
  }
  // vertical 1-D gaussian pass
  for (int i = 2; i < ROWS - 2; i++) {
    for (int j = 0; j < COLS; j++) {
      blurred[i][j] = 0.0625 * tmp[i - 2][j] + 0.25 * tmp[i - 1][j]
                    + 0.375 * tmp[i][j] + 0.25 * tmp[i + 1][j]
                    + 0.0625 * tmp[i + 2][j];
    }
  }
}

void calcSobel_dX() {
  // smoothing pass
  for (int i = 1; i < ROWS - 1; i++) {
    for (int j = 0; j < COLS; j++) {
      tmp[i][j] = blurred[i - 1][j] + 2.0 * blurred[i][j] + blurred[i + 1][j];
    }
  }
  // derivative pass
  for (int i = 0; i < ROWS; i++) {
    for (int j = 1; j < COLS - 1; j++) {
      dx[i][j] = tmp[i][j + 1] - tmp[i][j - 1];
    }
  }
}

void calcSobel_dY() {
  for (int i = 0; i < ROWS; i++) {
    for (int j = 1; j < COLS - 1; j++) {
      tmp[i][j] = blurred[i][j - 1] + 2.0 * blurred[i][j] + blurred[i][j + 1];
    }
  }
  for (int i = 1; i < ROWS - 1; i++) {
    for (int j = 0; j < COLS; j++) {
      dy[i][j] = tmp[i + 1][j] - tmp[i - 1][j];
    }
  }
}

void calcLambda() {
  for (int i = WIN; i < ROWS - WIN; i++) {
    for (int j = WIN; j < COLS - WIN; j++) {
      float gxx = 0.0;
      float gyy = 0.0;
      float gxy = 0.0;
      for (int wi = 0 - WIN; wi <= WIN; wi++) {
        for (int wj = 0 - WIN; wj <= WIN; wj++) {
          float vx = dx[i + wi][j + wj];
          float vy = dy[i + wi][j + wj];
          gxx += vx * vx;
          gyy += vy * vy;
          gxy += vx * vy;
        }
      }
      float tr = gxx + gyy;
      float det = gxx * gyy - gxy * gxy;
      float disc = tr * tr - 4.0 * det;
      if (disc < 0.0) disc = 0.0;
      lambda[i][j] = 0.5 * (tr + sqrt(disc));
    }
  }
}

void fillFeatures() {
  // Figure 2 of the paper: only the innermost loop (over k) is parallel.
  // Each (i, j) pass conditionally improves the same per-feature records,
  // so the i and j loops carry true dependences through features[][].
  for (int i = WIN; i < ROWS - WIN; i++) {
    for (int j = WIN; j < COLS - WIN; j++) {
      float currLambda = lambda[i][j];
      for (int k = 0; k < NFEATURES; k++) {
        if (features[2][k] < currLambda - 0.001 * (float) k) {
          features[0][k] = (float) j;
          features[1][k] = (float) i;
          features[2][k] = currLambda - 0.001 * (float) k;
        }
      }
    }
  }
}

void getInterpPatch(int fi) {
  float fx = features[0][fi];
  float fy = features[1][fi];
  int bx = (int) fx;
  int by = (int) fy;
  if (bx > COLS - 8) bx = COLS - 8;
  if (by > ROWS - 8) by = ROWS - 8;
  if (bx < 0) bx = 0;
  if (by < 0) by = 0;
  float ax = fx - (float) bx;
  float ay = fy - (float) by;
  for (int i = 0; i < 6; i++) {
    for (int j = 0; j < 6; j++) {
      patch[i][j] = (1.0 - ax) * (1.0 - ay) * blurred[by + i][bx + j]
                  + ax * (1.0 - ay) * blurred[by + i][bx + j + 1]
                  + ay * (1.0 - ax) * blurred[by + i + 1][bx + j]
                  + ax * ay * blurred[by + i + 1][bx + j + 1];
      patchsum += patch[i][j];
    }
  }
}

int main() {
  for (int i = 0; i < ROWS; i++) {
    for (int j = 0; j < COLS; j++) {
      int s = i * COLS + j;
      img[i][j] = 0.000002 * (float) (s * s)
                + 0.00001 * (float) ((i * 7 + j * 13) % 16);
    }
  }
  for (int k = 0; k < NFEATURES; k++) {
    features[2][k] = -1.0;
  }

  imageBlur();
  calcSobel_dX();
  calcSobel_dY();
  calcLambda();
  fillFeatures();
  for (int f = 0; f < NFEATURES; f++) {
    getInterpPatch(f);
  }

  print("tracking: patchsum", patchsum);
  return (int) (patchsum * 0.1);
}
"""

BENCHMARK = Benchmark(
    name="tracking",
    suite="sdvbs",
    source=SOURCE,
    # tracking is the discovery/planning showcase (Figure 3), not part of
    # the §6 MANUAL comparison; no third-party plan exists.
    manual_regions=(),
    description="SD-VBS feature tracking (Figures 2 and 3)",
)
