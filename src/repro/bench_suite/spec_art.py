"""SPEC ``art`` — Adaptive Resonance Theory neural network.

Kernel structure mirrors art's recognition phase: for every scanned window,
compute F1-layer bottom-up activations (DOALL over F1 neurons with an inner
weighted-sum reduction), normalize, find the winning F2 neuron (a serial
argmax), and update the winner's weights (DOALL). ``art`` is the one
benchmark where the paper's Kremlin plan was *larger* than MANUAL (4 vs 3,
a 0.75× "reduction", overlap 1): Kremlin additionally recommends the window
scan loop and the normalization loop that the SPEC OMP version left serial.
"""

from repro.bench_suite.registry import Benchmark

SOURCE = """
// SPEC art kernel (scaled): ART network match/train over scan windows.
int NF1 = 128;
int NF2 = 12;
int NWINDOWS = 20;

float busp[128];
float tds[1536];
float f1_act[128];
float f2_act[12];
float input[128];
float matchsum;

void compute_input(int w) {
  for (int i = 0; i < NF1; i++) {
    input[i] = (float) (((w * 31 + i * 17) % 97)) / 97.0;
  }
}

void compute_f1(int w) {
  for (int i = 0; i < NF1; i++) {
    float act = 0.0;
    for (int j = 0; j < NF2; j++) {
      act += tds[i * NF2 + j] * f2_act[j];
    }
    f1_act[i] = input[i] / (1.0 + act);
  }
}

void compute_f2() {
  for (int j = 0; j < NF2; j++) {
    float act = 0.0;
    for (int i = 0; i < NF1; i++) {
      act += busp[i] * f1_act[i] * (0.8 + 0.2 * (float) (j % 3));
    }
    f2_act[j] = act;
  }
}

int find_winner() {
  // serial argmax over F2 activations
  int winner = 0;
  float best = f2_act[0];
  for (int j = 1; j < NF2; j++) {
    if (f2_act[j] > best) {
      best = f2_act[j];
      winner = j;
    }
  }
  return winner;
}

void train_winner(int winner) {
  for (int i = 0; i < NF1; i++) {
    tds[i * NF2 + winner] = 0.9 * tds[i * NF2 + winner] + 0.1 * f1_act[i];
  }
}

int main() {
  for (int i = 0; i < NF1; i++) {
    busp[i] = 0.5 + (float) (i % 9) / 18.0;
    for (int j = 0; j < NF2; j++) {
      tds[i * NF2 + j] = (float) ((i * 5 + j * 7) % 13) / 13.0;
    }
  }
  for (int j = 0; j < NF2; j++) {
    f2_act[j] = 0.1;
  }

  for (int w = 0; w < NWINDOWS; w++) {
    compute_input(w);
    compute_f1(w);
    compute_f2();
    int winner = find_winner();
    train_winner(winner);
    matchsum += f2_act[winner];
  }
  print("art: matchsum", matchsum);
  return (int) (matchsum * 10.0) % 1000;
}
"""

BENCHMARK = Benchmark(
    name="art",
    suite="specomp",
    source=SOURCE,
    # SPEC OMP art: the two layer-activation nests and the training loop.
    manual_regions=(
        "compute_f1#loop1",
        "compute_f2#loop1",
        "train_winner#loop1",
    ),
    description="ART neural-network recognition over scan windows",
)
