"""Benchmark registry, region-name resolution, and a profile cache."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.hcpa.aggregate import AggregatedProfile, aggregate_profile
from repro.hcpa.summaries import ParallelismProfile
from repro.instrument.compile import CompiledProgram, kremlin_cc
from repro.interp.interpreter import RunResult
from repro.kremlib.profiler import profile_program


@dataclass(frozen=True)
class Benchmark:
    """One benchmark program plus its MANUAL parallelization plan."""

    name: str
    suite: str  # 'npb' | 'specomp' | 'sdvbs' | 'kernel'
    source: str
    #: region names (``func`` or ``func#loopN``) the third-party MANUAL
    #: version parallelized
    manual_regions: tuple[str, ...]
    description: str
    #: expected return value of main() — a self-check that the port computes
    #: what it claims (None = unchecked)
    expected_result: int | None = None

    def compile(self) -> CompiledProgram:
        return kremlin_cc(self.source, f"{self.name}.c")

    def resolve_regions(
        self, program: CompiledProgram, names=None
    ) -> list[int]:
        """Map region names to static region ids in a compiled program."""
        names = self.manual_regions if names is None else names
        by_name = {region.name: region.id for region in program.regions}
        out: list[int] = []
        for name in names:
            if name not in by_name:
                raise KeyError(
                    f"{self.name}: MANUAL region {name!r} not found; "
                    f"known: {sorted(by_name)}"
                )
            out.append(by_name[name])
        return out


@dataclass
class BenchmarkResult:
    """A compiled, executed, profiled benchmark (cached per process)."""

    benchmark: Benchmark
    program: CompiledProgram
    profile: ParallelismProfile
    aggregated: AggregatedProfile
    run: RunResult
    manual_plan: list[int] = field(default_factory=list)


def _registry() -> dict[str, Benchmark]:
    from repro.bench_suite import (
        mandel,
        npb_bt,
        npb_cg,
        npb_ep,
        npb_ft,
        npb_is,
        npb_lu,
        npb_mg,
        npb_sp,
        spec_ammp,
        spec_art,
        spec_equake,
        vision_tracking,
    )

    modules = [
        npb_bt,
        npb_cg,
        npb_ep,
        npb_ft,
        npb_is,
        npb_lu,
        npb_mg,
        npb_sp,
        spec_ammp,
        spec_art,
        spec_equake,
        vision_tracking,
        mandel,
    ]
    out: dict[str, Benchmark] = {}
    for module in modules:
        benchmark = module.BENCHMARK
        out[benchmark.name] = benchmark
    return out


def all_benchmarks() -> list[Benchmark]:
    """Every benchmark, evaluation suite plus the tracking motivator."""
    return list(_registry().values())


def evaluation_benchmarks() -> list[Benchmark]:
    """The 11 programs of the paper's §6 evaluation (NPB + SPEC OMP)."""
    return [b for b in all_benchmarks() if b.suite in ("npb", "specomp")]


def get_benchmark(name: str) -> Benchmark:
    registry = _registry()
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(registry)}"
        ) from None


@lru_cache(maxsize=None)
def run_benchmark(name: str) -> BenchmarkResult:
    """Compile, execute, and profile a benchmark (memoized per process —
    profiling is the expensive step and every experiment shares it)."""
    benchmark = get_benchmark(name)
    program = benchmark.compile()
    profile, run = profile_program(program)
    if (
        benchmark.expected_result is not None
        and run.value != benchmark.expected_result
    ):
        raise AssertionError(
            f"{name}: self-check failed: main() returned {run.value}, "
            f"expected {benchmark.expected_result}"
        )
    aggregated = aggregate_profile(profile)
    manual_plan = benchmark.resolve_regions(program)
    return BenchmarkResult(
        benchmark=benchmark,
        program=program,
        profile=profile,
        aggregated=aggregated,
        run=run,
        manual_plan=manual_plan,
    )
