"""NPB ``bt`` — block-tridiagonal ADI solver.

Per time step: four right-hand-side stencil nests (flux differences in each
direction, fourth-order dissipation, scaling), then line solves in the x
and y directions (forward elimination + back substitution along each line
— serial along the line, DOALL across lines), and a final add. This is the
paper's largest-plan benchmark class: the third-party version annotated
both the outer *and* inner loops of every nest (plan size 54), while
Kremlin needs only the outer loop of each nest (27) — exactly a 2.0×
reduction. Our scaled port keeps that 2:1 structure with 9 nests.
"""

from repro.bench_suite.registry import Benchmark

SOURCE = """
// NPB BT kernel (scaled): ADI line solves with RHS stencils.
int N = 24;
int NSTEPS = 3;

float u[24][24];
float rhs[24][24];
float forcing[24][24];
float tmp[24][24];

void compute_rhs() {
  // xi-direction flux differences
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      rhs[i][j] = forcing[i][j]
                + 0.4 * (u[i + 1][j] - 2.0 * u[i][j] + u[i - 1][j]);
    }
  }
  // eta-direction flux differences
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      rhs[i][j] = rhs[i][j]
                + 0.4 * (u[i][j + 1] - 2.0 * u[i][j] + u[i][j - 1]);
    }
  }
  // fourth-order dissipation
  for (int i = 2; i < N - 2; i++) {
    for (int j = 2; j < N - 2; j++) {
      rhs[i][j] = rhs[i][j]
                - 0.02 * (u[i - 2][j] - 4.0 * u[i - 1][j] + 6.0 * u[i][j]
                        - 4.0 * u[i + 1][j] + u[i + 2][j])
                - 0.02 * (u[i][j - 2] - 4.0 * u[i][j - 1] + 6.0 * u[i][j]
                        - 4.0 * u[i][j + 1] + u[i][j + 2]);
    }
  }
  // time-step scaling
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      rhs[i][j] = rhs[i][j] * 0.8;
    }
  }
}

void x_solve() {
  // forward elimination along each x line (DOALL across j)
  for (int j = 1; j < N - 1; j++) {
    tmp[0][j] = rhs[0][j];
    for (int i = 1; i < N - 1; i++) {
      tmp[i][j] = (rhs[i][j] + 0.3 * tmp[i - 1][j]) * 0.55;
    }
  }
  // back substitution
  for (int j = 1; j < N - 1; j++) {
    for (int i = N - 3; i >= 1; i--) {
      tmp[i][j] = tmp[i][j] + 0.25 * tmp[i + 1][j];
    }
  }
}

void y_solve() {
  for (int i = 1; i < N - 1; i++) {
    tmp[i][0] = tmp[i][0] + rhs[i][0];
    for (int j = 1; j < N - 1; j++) {
      tmp[i][j] = (tmp[i][j] + 0.3 * tmp[i][j - 1]) * 0.55;
    }
  }
  for (int i = 1; i < N - 1; i++) {
    for (int j = N - 3; j >= 1; j--) {
      tmp[i][j] = tmp[i][j] + 0.25 * tmp[i][j + 1];
    }
  }
}

void add() {
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      u[i][j] = u[i][j] + tmp[i][j];
    }
  }
}

int main() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      u[i][j] = (float) ((i * 3 + j * 5) % 16) / 16.0;
      forcing[i][j] = (float) ((i + j) % 8) / 8.0;
    }
  }
  for (int step = 0; step < NSTEPS; step++) {
    compute_rhs();
    x_solve();
    y_solve();
    add();
  }
  float checksum = 0.0;
  for (int i = 1; i < N - 1; i++) {
    for (int j = 1; j < N - 1; j++) {
      checksum += u[i][j];
    }
  }
  print("bt: checksum", checksum);
  return (int) checksum % 1000;
}
"""

BENCHMARK = Benchmark(
    name="bt",
    suite="npb",
    source=SOURCE,
    # The third-party BT annotates outer AND inner loops of all nine nests.
    manual_regions=(
        "compute_rhs#loop1",
        "compute_rhs#loop2",
        "compute_rhs#loop3",
        "compute_rhs#loop4",
        "compute_rhs#loop5",
        "compute_rhs#loop6",
        "compute_rhs#loop7",
        "compute_rhs#loop8",
        "x_solve#loop1",
        "x_solve#loop2",
        "x_solve#loop3",
        "x_solve#loop4",
        "y_solve#loop1",
        "y_solve#loop2",
        "y_solve#loop3",
        "y_solve#loop4",
        "add#loop1",
        "add#loop2",
    ),
    description="block-tridiagonal ADI solver",
)
