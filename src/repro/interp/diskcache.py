"""Persistent on-disk cache for AOT codegen units (warm-start tier).

:func:`~repro.interp.codegen.codegen_unit` already memoizes compiled
units per ``CompiledProgram`` object, which covers repeat runs inside one
process. This module extends that to repeat *processes*: the service
workload compiles the same sources on every restart, and codegen is the
dominant cost of a cold ``prepare()``. Entries are keyed by a sha256 over
everything that can change the generated code:

* the MiniC source text and filename (spans bake the filename in),
* a digest of the printed instrumented IR — the source alone is not
  enough, because callers may mutate a program's IR in place (the
  failure-injection tests corrupt region markers) and the cache must
  key on exactly what executes,
* the engine flavor, instruction budget, depth limit, and metrics gate,
* the vectorization threshold (it changes the emitted fold statements),
* the cost model (instruction costs are baked into the source as
  literals),
* a digest of the emitter implementation itself (``codegen.py`` +
  ``segments.py`` + ``shadow.py``), so editing the compiler silently
  invalidates every stale entry without manual version bumps, and
* CPython's bytecode magic number (``marshal`` payloads are
  version-specific).

Robustness follows the profile store's discipline: writes go to a
temporary file in the cache directory and land with ``os.replace``, so a
reader never observes a torn entry; concurrent writers of the same key
are last-wins with both payloads valid. Any unreadable, truncated, or
mismatched entry is treated as a miss (and counted as an invalidation) —
the cache can be deleted at any time.

Generated source is safe to reload in a fresh process even though it
bakes ``id()``-derived control-stack tokens and interned global keys as
literals: those tokens are only ever compared against values produced by
the *same* unit, so they are self-consistent whatever process executes
the code object.

Configuration: ``KREMLIN_CODEGEN_CACHE=0`` (or ``off``) disables the
cache; ``KREMLIN_CACHE_DIR`` overrides the root directory (default
``$XDG_CACHE_HOME/kremlin/codegen`` or ``~/.cache/kremlin/codegen``).
:func:`configure` does the same programmatically and wins over the
environment. Counters are surfaced as ``codegen.disk_cache.*`` through
the metrics registry (``--metrics``) and always through :func:`stats`.
"""

from __future__ import annotations

import base64
import hashlib
import importlib.util
import json
import marshal
import os
import time

from repro.frontend.source import SourceLocation, SourceSpan
from repro.interp.builtins import BUILTINS
from repro.ir.printer import print_module

#: container format stamp written into every entry
CACHE_FORMAT = "kremlin-codegen-cache"

#: entry layout version; bump when the JSON schema below changes
ENTRY_VERSION = 1

#: soft cap on cached entries; exceeded entries are pruned oldest-first
MAX_ENTRIES = 4096

#: prune scan frequency, in writes per process
_PRUNE_EVERY = 256

_stats = {
    "hits": 0,
    "misses": 0,
    "invalidations": 0,
    "writes": 0,
    "errors": 0,
}

_configured: dict = {"directory": None, "enabled": None}
_emitter_digest_cache: str | None = None
_writes_since_prune = 0
_tmp_seq = 0


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


def configure(
    directory: str | None = None, enabled: bool | None = None
) -> None:
    """Override the cache location/enable flag for this process.

    ``directory=None``/``enabled=None`` fall back to the environment.
    """
    _configured["directory"] = directory
    _configured["enabled"] = enabled


def cache_dir() -> str | None:
    """The active cache directory, or None when the cache is disabled."""
    if _configured["enabled"] is False:
        return None
    if _configured["directory"] is not None:
        return _configured["directory"]
    if _configured["enabled"] is None:
        flag = os.environ.get("KREMLIN_CODEGEN_CACHE", "").strip().lower()
        if flag in ("0", "off", "false", "no"):
            return None
    root = os.environ.get("KREMLIN_CACHE_DIR")
    if root:
        return os.path.join(root, "codegen")
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "kremlin", "codegen")


def stats() -> dict:
    """Per-process counters (always collected, independent of metrics)."""
    return dict(_stats)


def reset_stats() -> None:
    for name in _stats:
        _stats[name] = 0


def _count(name: str, amount: int = 1) -> None:
    _stats[name] += amount
    from repro.obs.metrics import get_metrics, metrics_enabled

    if metrics_enabled():
        get_metrics().counter(f"codegen.disk_cache.{name}").inc(amount)


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------


def _emitter_digest() -> str:
    """Digest of the code-emitting implementation itself.

    Any edit to the AOT emitter, the shared segment fragments, or the
    shadow kernels changes the generated source or its runtime helpers;
    hashing their file contents makes stale entries unreachable without
    anyone remembering to bump a version constant.
    """
    global _emitter_digest_cache
    if _emitter_digest_cache is None:
        hasher = hashlib.sha256()
        here = os.path.dirname(os.path.abspath(__file__))
        kremlib = os.path.normpath(os.path.join(here, "..", "kremlib"))
        for path in (
            os.path.join(here, "codegen.py"),
            os.path.join(kremlib, "segments.py"),
            os.path.join(kremlib, "shadow.py"),
        ):
            try:
                with open(path, "rb") as handle:
                    hasher.update(handle.read())
            except OSError:
                hasher.update(b"<unreadable>")
            hasher.update(b"\x00")
        _emitter_digest_cache = hasher.hexdigest()
    return _emitter_digest_cache


def unit_key(
    program,
    flavor: str,
    budget,
    max_depth,
    metrics_on: bool,
    vector_threshold: int,
) -> str:
    """sha256 identity of one compiled unit (see module docstring)."""
    cost_model = program.instrumentation.cost_model
    # The printed IR, not just the source: callers may mutate a program's
    # instrumented IR in place (failure-injection tests corrupt region
    # markers, for example), and the unit must be compiled from — and
    # keyed on — exactly what will execute.
    ir_text = print_module(program.module)
    descriptor = json.dumps(
        {
            "format": CACHE_FORMAT,
            "emitter": _emitter_digest(),
            "magic": importlib.util.MAGIC_NUMBER.hex(),
            "source": program.source,
            "ir": hashlib.sha256(ir_text.encode("utf-8")).hexdigest(),
            "filename": program.filename,
            "flavor": flavor,
            "budget": budget,
            "max_depth": max_depth,
            "metrics": bool(metrics_on),
            "vector_threshold": vector_threshold,
            "cost_table": sorted(cost_model.table.items()),
            "float_extra": sorted(cost_model.float_extra.items()),
        },
        sort_keys=True,
    )
    return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Environment (de)serialization
# ----------------------------------------------------------------------


def _env_recipe(program_env: dict) -> list | None:
    """Serialize a unit's program_env, or None if any value is opaque.

    The env only ever holds spans, out-of-line numeric constants, string
    constants, and builtin impl functions (see ``_ModuleEmitter._name``);
    anything else means the emitter grew a new value kind this module
    does not understand yet, in which case the unit is simply not disk-
    cached (robust by construction, never wrong).
    """
    builtin_names = {id(spec.impl): name for name, spec in BUILTINS.items()}
    recipe: list = []
    for name, value in program_env.items():
        kind = type(value)
        if kind is SourceSpan:
            recipe.append(
                [
                    name,
                    "span",
                    value.start.line,
                    value.start.column,
                    value.end.line,
                    value.end.column,
                    value.filename,
                ]
            )
        elif kind is str:
            recipe.append([name, "str", value])
        elif kind is int or kind is float:
            recipe.append([name, "const", value])
        elif id(value) in builtin_names:
            recipe.append([name, "builtin", builtin_names[id(value)]])
        else:
            return None
    return recipe


def _env_from_recipe(recipe: list) -> dict:
    """Rebuild a program_env dict; raises on malformed entries."""
    env: dict = {}
    for item in recipe:
        name, kind = item[0], item[1]
        if kind == "span":
            _, _, sl, sc, el, ec, filename = item
            env[name] = SourceSpan(
                SourceLocation(sl, sc), SourceLocation(el, ec), filename
            )
        elif kind == "str":
            env[name] = item[2]
        elif kind == "const":
            env[name] = item[2]
        elif kind == "builtin":
            env[name] = BUILTINS[item[2]].impl
        else:
            raise ValueError(f"unknown env recipe kind {kind!r}")
    return env


# ----------------------------------------------------------------------
# Load / store
# ----------------------------------------------------------------------


def _entry_path(directory: str, key: str) -> str:
    return os.path.join(directory, f"{key}.json")


def load_unit(
    program,
    flavor: str,
    budget,
    max_depth,
    metrics_on: bool,
    vector_threshold: int,
):
    """Load a cached unit, or None on a miss/invalid entry (never raises).

    Returns a fully reconstructed
    :class:`~repro.interp.codegen.CodegenUnit` whose ``build_seconds``
    is the (tiny) deserialization time.
    """
    directory = cache_dir()
    if directory is None:
        return None
    started = time.perf_counter()
    key = unit_key(
        program, flavor, budget, max_depth, metrics_on, vector_threshold
    )
    path = _entry_path(directory, key)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError:
        _count("misses")
        return None
    except ValueError:
        # Torn/truncated/corrupt entry: unusable, treat as a miss.
        _count("invalidations")
        _count("misses")
        return None
    try:
        if (
            payload["format"] != CACHE_FORMAT
            or payload["version"] != ENTRY_VERSION
            or payload["magic"] != importlib.util.MAGIC_NUMBER.hex()
            or payload["key"] != key
        ):
            raise ValueError("cache entry does not match this build")
        code = marshal.loads(base64.b64decode(payload["code"]))
        env = _env_from_recipe(payload["env"])
        source = payload["source"]
        array_globals = list(payload["array_globals"])
        fallback_functions = list(payload["fallback_functions"])
    except (KeyError, IndexError, TypeError, ValueError, EOFError):
        _count("invalidations")
        _count("misses")
        return None
    from repro.interp.codegen import CodegenUnit

    _count("hits")
    return CodegenUnit(
        flavor=flavor,
        source=source,
        code=code,
        program_env=env,
        array_globals=array_globals,
        fallback_functions=fallback_functions,
        budget=budget,
        build_seconds=time.perf_counter() - started,
    )


def store_unit(
    program,
    flavor: str,
    budget,
    max_depth,
    metrics_on: bool,
    vector_threshold: int,
    unit,
) -> bool:
    """Persist a freshly built unit; best-effort, never raises."""
    global _writes_since_prune, _tmp_seq
    directory = cache_dir()
    if directory is None:
        return False
    recipe = _env_recipe(unit.program_env)
    if recipe is None:
        return False
    key = unit_key(
        program, flavor, budget, max_depth, metrics_on, vector_threshold
    )
    payload = {
        "format": CACHE_FORMAT,
        "version": ENTRY_VERSION,
        "magic": importlib.util.MAGIC_NUMBER.hex(),
        "key": key,
        "flavor": flavor,
        "budget": budget,
        "max_depth": max_depth,
        "metrics": bool(metrics_on),
        "vector_threshold": vector_threshold,
        "filename": program.filename,
        "source": unit.source,
        "code": base64.b64encode(marshal.dumps(unit.code)).decode("ascii"),
        "env": recipe,
        "array_globals": list(unit.array_globals),
        "fallback_functions": list(unit.fallback_functions),
    }
    path = _entry_path(directory, key)
    _tmp_seq += 1
    tmp = f"{path}.{os.getpid()}.{_tmp_seq}.tmp"
    try:
        os.makedirs(directory, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except (OSError, ValueError):
        _count("errors")
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False
    _count("writes")
    _writes_since_prune += 1
    if _writes_since_prune >= _PRUNE_EVERY:
        _writes_since_prune = 0
        _prune(directory)
    return True


def _prune(directory: str, max_entries: int = MAX_ENTRIES) -> None:
    """Drop oldest entries beyond the cap (fuzz runs write thousands of
    one-shot programs; the cache must not grow without bound)."""
    try:
        with os.scandir(directory) as it:
            entries = [
                (entry.stat().st_mtime, entry.path)
                for entry in it
                if entry.name.endswith(".json")
            ]
    except OSError:
        return
    if len(entries) <= max_entries:
        return
    entries.sort()
    for _, path in entries[: len(entries) - (max_entries * 3 // 4)]:
        try:
            os.unlink(path)
        except OSError:
            pass
