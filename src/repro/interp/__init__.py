"""IR interpreter: the execution substrate for Kremlin profiling.

The paper runs an instrumented native binary; here the interpreter executes
the instrumented IR deterministically and drives an optional
:class:`~repro.interp.interpreter.ExecutionObserver` with every retired
instruction. The KremLib runtime (:mod:`repro.kremlib`) is one such observer;
a plain run with no observer is the "uninstrumented" execution.
"""

from repro.interp.builtins import BUILTINS, BuiltinSpec, is_builtin
from repro.interp.errors import InterpreterError
from repro.interp.interpreter import ExecutionObserver, Interpreter, RunResult

__all__ = [
    "BUILTINS",
    "BuiltinSpec",
    "ExecutionObserver",
    "Interpreter",
    "InterpreterError",
    "RunResult",
    "is_builtin",
]
