"""Predecoded bytecode execution engine.

The tree-walking interpreter (:mod:`repro.interp.interpreter`) dispatches
every retired instruction through ``type()`` chains and live attribute
lookups. This module flattens each function's basic blocks once, up front,
into a contiguous stream of *step closures* with pre-resolved operand
accessors: each closure performs one or more instructions' semantic effect
and returns the index of the next closure to run. The execution loop is

    while pc >= 0:
        pc = code[pc](registers)

— closure dispatch, no ``isinstance``, no per-step attribute chasing.

Two decode strategies share the stream layout:

* :class:`PlainDecoder` (``observer=None``) additionally fuses straight-
  line instruction runs into single compiled closures (superinstructions):
  a basic block without user calls becomes ONE closure whose body is
  generated Python source with every operand access pre-resolved to a
  register subscript, captured global storage, or literal. Control
  transfers only ever target block heads, so intra-block fusion never
  breaks a branch target.
* the fused KremLib decoder in :mod:`repro.kremlib.fastpath`
  (``observer`` is a :class:`~repro.kremlib.profiler.KremlinProfiler`)
  emits one closure per instruction with the profiler's shadow-op tuples,
  branch→join records, and region metadata baked in at decode time, so
  the profiler does zero dict lookups per event.

Any other observer needs the generic per-instruction hook protocol; the
interpreter silently falls back to the tree engine for those.

Retired-instruction and cost counting is folded into block terminators
(one update per basic block instead of one per instruction), which is
observationally identical for successful runs because the tree engine only
publishes its counters when a function returns.

Decoding is lazy (first ``run()``), so code that mutates the IR after
``kremlin_cc`` — as the failure-injection tests do — still sees its
mutations, exactly like the tree engine.
"""

from __future__ import annotations

from repro.interp.builtins import BUILTINS
from repro.interp.errors import InterpreterError
from repro.interp.interpreter import (
    _MAX_CALL_DEPTH,
    ArrayStorage,
    RunResult,
)
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Copy,
    Jump,
    Load,
    RegionEnter,
    RegionExit,
    Ret,
    Store,
    UnOp,
)
from repro.ir.types import FLOAT, INT
from repro.ir.values import Constant, GlobalRef, Register, StringConst


class DecodedFunction:
    """One function's flattened instruction stream."""

    __slots__ = ("name", "num_registers", "code", "param_indices", "function")

    def __init__(self, function):
        self.name = function.name
        self.num_registers = function.num_registers
        self.param_indices = tuple(p.index for p in function.params)
        self.function = function
        self.code: list = []


# Source templates for the side-effect-free binary ops; division and
# modulo raise and carry C truncation semantics, so they get dedicated
# multi-statement templates in the codegen below.
_PURE_BINOP_EXPRS = {
    "+": "{a} + {b}",
    "-": "{a} - {b}",
    "*": "{a} * {b}",
    "<": "1 if {a} < {b} else 0",
    "<=": "1 if {a} <= {b} else 0",
    ">": "1 if {a} > {b} else 0",
    ">=": "1 if {a} >= {b} else 0",
    "==": "1 if {a} == {b} else 0",
    "!=": "1 if {a} != {b} else 0",
    "&": "{a} & {b}",
    "|": "{a} | {b}",
    "^": "{a} ^ {b}",
    "<<": "{a} << {b}",
    ">>": "{a} >> {b}",
    "&&": "1 if ({a} != 0 and {b} != 0) else 0",
    "||": "1 if ({a} != 0 or {b} != 0) else 0",
}


def _slow_index(index, size: int, span) -> int:
    """Out-of-line index check, same semantics as interpreter._check_index."""
    if not isinstance(index, int):
        raise InterpreterError(f"non-integer array index {index!r}", span)
    if index < 0 or index >= size:
        raise InterpreterError(
            f"array index {index} out of bounds (size {size})", span
        )
    return index


def _is_inline_literal(value) -> bool:
    """Can this constant be spliced into generated source as a literal?"""
    if type(value) is int:
        return True
    if type(value) is float:
        # repr() round-trips finite floats; inf/nan aren't literals.
        return value == value and value not in (float("inf"), float("-inf"))
    return False


class Decoder:
    """Shared decode machinery: operand accessors and stream layout.

    Subclassed by :class:`PlainDecoder` below and by the fused KremLib
    decoder in :mod:`repro.kremlib.fastpath`; subclasses provide the
    per-opcode emitters while this class owns the two-pass pc layout.
    """

    def __init__(self, engine: "BytecodeEngine"):
        self.engine = engine
        self.interp = engine.interp
        self.counts = engine.counts
        self.shells: dict[str, DecodedFunction] = engine.shells
        self.budget = engine.interp.max_instructions
        self.current_function = None

    # -- operand accessors -------------------------------------------------

    def getter(self, operand):
        """A ``regs -> value`` closure for an arbitrary operand."""
        if type(operand) is Register:
            index = operand.index

            def get(regs):
                return regs[index]

            return get
        if type(operand) is Constant or type(operand) is StringConst:
            value = operand.value
            return lambda regs: value
        if type(operand) is GlobalRef:
            storage = self.interp.globals_array.get(operand.name)
            if storage is not None:
                return lambda regs: storage
            cells = self.interp.globals_scalar
            name = operand.name

            def get_global(regs):
                return cells[name]

            return get_global
        raise InterpreterError(f"cannot evaluate operand {operand!r}")

    # -- layout ------------------------------------------------------------

    def prologue_factories(self, function, block, is_entry) -> list:
        """Per-block head closures as ``next_pc -> closure`` factories.

        The base implementation emits the instruction-budget check when a
        budget is configured: checking once per block is exactly the tree
        engine's "only check at block boundaries" rule.
        """
        if self.budget is None:
            return []
        counts = self.counts
        budget = self.budget

        def make(next_pc):
            def step(regs):
                if counts[0] > budget:
                    raise InterpreterError("instruction budget exceeded")
                return next_pc

            return step

        return [make]

    def will_emit(self, instr) -> bool:
        raise NotImplementedError

    def emit_instr(self, instr, next_pc):
        raise NotImplementedError

    def emit_terminator(self, term, block, block_pc, retired, cost):
        raise NotImplementedError

    def block_slot_count(self, block) -> int:
        return sum(1 for i in block.instructions if self.will_emit(i)) + 1

    def emit_block(self, block, block_pc, code) -> None:
        for instr in block.instructions:
            if not self.will_emit(instr):
                continue
            code.append(self.emit_instr(instr, len(code) + 1))
        retired, cost = _block_totals(block)
        code.append(
            self.emit_terminator(block.terminator, block, block_pc, retired, cost)
        )

    def decode_function(self, function, shell: DecodedFunction) -> None:
        self.current_function = function

        # Pass 1: assign each block its starting pc.
        block_pc: dict[int, int] = {}
        pc = 0
        for i, block in enumerate(function.blocks):
            block_pc[id(block)] = pc
            pc += len(self.prologue_factories(function, block, i == 0))
            pc += self.block_slot_count(block)

        # Pass 2: emit closures.
        code = shell.code
        del code[:]
        for i, block in enumerate(function.blocks):
            for factory in self.prologue_factories(function, block, i == 0):
                code.append(factory(len(code) + 1))
            self.emit_block(block, block_pc, code)
        if len(code) != pc:
            raise InterpreterError(
                f"decode layout mismatch in {function.name}: "
                f"planned {pc} slots, emitted {len(code)}"
            )

    def decode_module(self) -> None:
        for name, function in self.interp.module.functions.items():
            self.decode_function(function, self.shells[name])


def _block_totals(block) -> tuple[int, int]:
    retired = len(block.instructions) + 1
    cost = sum(i.cost for i in block.instructions) + block.terminator.cost
    return retired, cost


class PlainDecoder(Decoder):
    """Decoder for uninstrumented runs: no observer hooks anywhere.

    Straight-line runs of non-call instructions compile to one closure of
    generated source; user calls keep their own closure step (they need
    the engine's depth guard and callee dispatch).
    """

    def __init__(self, engine):
        super().__init__(engine)
        self._sym = 0
        self._base_env = {
            "counts": self.counts,
            "cells": self.interp.globals_scalar,
            "engine": self.engine,
            "interp": self.interp,
            "InterpreterError": InterpreterError,
            "ArrayStorage": ArrayStorage,
            "_slow_index": _slow_index,
            # Pin the builtins the templates use into module scope: a
            # LOAD_GLOBAL hit beats the globals-then-builtins miss chain.
            "int": int,
            "float": float,
            "type": type,
            "len": len,
            "abs": abs,
            "isinstance": isinstance,
        }

    # -- helpers -----------------------------------------------------------

    def _name(self, env: dict, value, prefix: str = "k") -> str:
        self._sym += 1
        name = f"_{prefix}{self._sym}"
        env[name] = value
        return name

    def _expr(self, operand, env: dict) -> str:
        """Pre-resolved source expression for an operand."""
        if type(operand) is Register:
            return f"regs[{operand.index}]"
        if type(operand) is Constant:
            if _is_inline_literal(operand.value):
                return repr(operand.value)
            return self._name(env, operand.value, "c")
        if type(operand) is StringConst:
            return self._name(env, operand.value, "s")
        if type(operand) is GlobalRef:
            storage = self.interp.globals_array.get(operand.name)
            if storage is not None:
                return self._name(env, storage, "g")
            return f"cells[{operand.name!r}]"
        raise InterpreterError(f"cannot evaluate operand {operand!r}")

    # -- layout ------------------------------------------------------------

    def _is_closure_step(self, instr) -> bool:
        return type(instr) is Call and not instr.is_builtin

    def _skip(self, instr) -> bool:
        # Region markers have no semantic effect and nothing observes them;
        # they still count as retired instructions via the block totals.
        cls = type(instr)
        return cls is RegionEnter or cls is RegionExit

    def block_slot_count(self, block) -> int:
        slots = 0
        open_run = False
        for instr in block.instructions:
            if self._skip(instr):
                continue
            if self._is_closure_step(instr):
                slots += 1
                open_run = False
            elif not open_run:
                slots += 1
                open_run = True
        if not open_run:
            slots += 1  # terminator gets its own (possibly empty) run
        return slots

    def emit_block(self, block, block_pc, code) -> None:
        pending: list = []
        for instr in block.instructions:
            if self._skip(instr):
                continue
            if self._is_closure_step(instr):
                if pending:
                    # The run lands at len(code); the call step follows it.
                    code.append(self._compile_run(pending, None, len(code) + 1))
                    pending = []
                code.append(self._emit_call(instr, len(code) + 1))
            else:
                pending.append(instr)
        code.append(self._compile_run(pending, (block, block_pc), None))

    def _fn_preamble(self) -> tuple[str, list[str]]:
        """(function header, unpack lines) for generated run closures."""
        return "def _run(regs):", []

    def _begin_run(self) -> None:
        """Hook: reset per-run codegen state (fused decoder overrides)."""

    def _gen_fallthrough(self, lines: list[str], next_pc: int) -> None:
        """Hook: end a run that falls through to a call step."""
        lines.append(f"return {next_pc}")

    def _compile_run(self, instrs, term_info, next_pc):
        """Compile a straight-line run (plus optional terminator) to one
        closure of generated source."""
        env = dict(self._base_env)
        header, lines = self._fn_preamble()
        self._begin_run()
        for instr in instrs:
            self._gen_instr(instr, lines, env)
        if term_info is None:
            self._gen_fallthrough(lines, next_pc)
        else:
            block, block_pc = term_info
            retired, cost = _block_totals(block)
            self._gen_terminator(
                block.terminator, block, block_pc, retired, cost, lines, env
            )
        source = f"{header}\n" + "".join(f"    {line}\n" for line in lines)
        exec(source, env)  # noqa: S102 - templates above, operands resolved
        return env["_run"]

    # -- statement generators ----------------------------------------------

    def _gen_instr(self, instr, lines: list[str], env: dict) -> None:
        cls = type(instr)
        if cls is BinOp:
            self._gen_binop(instr, lines, env)
        elif cls is Load:
            self._gen_load(instr, lines, env)
        elif cls is Store:
            self._gen_store(instr, lines, env)
        elif cls is Copy:
            lines.append(
                f"regs[{instr.result.index}] = {self._expr(instr.operand, env)}"
            )
        elif cls is Cast:
            conv = "int" if instr.target == INT else "float"
            lines.append(
                f"regs[{instr.result.index}] = "
                f"{conv}({self._expr(instr.operand, env)})"
            )
        elif cls is UnOp:
            operand = self._expr(instr.operand, env)
            if instr.op == "-":
                lines.append(f"regs[{instr.result.index}] = -({operand})")
            else:  # '!'
                lines.append(
                    f"regs[{instr.result.index}] = 0 if ({operand}) else 1"
                )
        elif cls is Call:  # builtin; user calls are closure steps
            self._gen_builtin(instr, lines, env)
        elif cls is Alloca:
            count = instr.array_type.element_count
            assert count is not None
            is_int = instr.array_type.element == INT
            lines.append(
                f"regs[{instr.result.index}] = ArrayStorage({count}, {is_int})"
            )
        else:
            raise InterpreterError(
                f"unknown instruction {cls.__name__}", instr.span
            )

    def _gen_binop(self, instr, lines: list[str], env: dict) -> None:
        res = instr.result.index
        op = instr.op
        a = self._expr(instr.lhs, env)
        b = self._expr(instr.rhs, env)
        template = _PURE_BINOP_EXPRS.get(op)
        if template is not None:
            lines.append(f"regs[{res}] = {template.format(a=a, b=b)}")
            return
        span = self._name(env, instr.span, "sp")
        if op == "/":
            lines += [
                f"b = {b}",
                "if b == 0:",
                f"    raise InterpreterError('division by zero', {span})",
                f"a = {a}",
                "if isinstance(a, int) and isinstance(b, int):",
                "    q = abs(a) // abs(b)",
                f"    regs[{res}] = -q if (a < 0) != (b < 0) else q",
                "else:",
                f"    regs[{res}] = a / b",
            ]
            return
        if op == "%":
            lines += [
                f"b = {b}",
                "if b == 0:",
                f"    raise InterpreterError('modulo by zero', {span})",
                f"a = {a}",
                "q = abs(a) // abs(b)",
                "if (a < 0) != (b < 0):",
                "    q = -q",
                f"regs[{res}] = a - q * b",
            ]
            return
        raise InterpreterError(f"unknown binary operator {op!r}", instr.span)

    def _gen_load(self, instr, lines: list[str], env: dict) -> None:
        res = instr.result.index
        mem = instr.mem
        if type(mem) is GlobalRef and mem.name in self.interp.globals_scalar:
            lines.append(f"regs[{res}] = cells[{mem.name!r}]")
            return
        span = self._name(env, instr.span, "sp")
        index = self._expr(instr.index, env)
        if type(mem) is GlobalRef:
            # Fixed global array: capture the data list and its size.
            data_list = self.interp.globals_array[mem.name].data
            d = self._name(env, data_list, "d")
            size = len(data_list)
            lines += [
                f"i = {index}",
                f"if type(i) is int and 0 <= i < {size}:",
                f"    regs[{res}] = {d}[i]",
                "else:",
                f"    regs[{res}] = {d}[_slow_index(i, {size}, {span})]",
            ]
            return
        lines += [
            f"d = regs[{mem.index}].data",
            f"i = {index}",
            "if type(i) is int and 0 <= i < len(d):",
            f"    regs[{res}] = d[i]",
            "else:",
            f"    regs[{res}] = d[_slow_index(i, len(d), {span})]",
        ]

    def _gen_store(self, instr, lines: list[str], env: dict) -> None:
        mem = instr.mem
        value = self._expr(instr.value, env)
        if type(mem) is GlobalRef and mem.name in self.interp.globals_scalar:
            var = self.interp.module.globals[mem.name]
            conv = "int" if var.type == INT else "float"
            lines.append(f"cells[{mem.name!r}] = {conv}({value})")
            return
        span = self._name(env, instr.span, "sp")
        index = self._expr(instr.index, env)
        if type(mem) is GlobalRef:
            storage = self.interp.globals_array[mem.name]
            d = self._name(env, storage.data, "d")
            size = len(storage.data)
            conv = "int" if storage.element_is_int else "float"
            lines += [
                f"i = {index}",
                f"if not (type(i) is int and 0 <= i < {size}):",
                f"    i = _slow_index(i, {size}, {span})",
                f"{d}[i] = {conv}({value})",
            ]
            return
        lines += [
            f"st = regs[{mem.index}]",
            "d = st.data",
            f"i = {index}",
            "if not (type(i) is int and 0 <= i < len(d)):",
            f"    i = _slow_index(i, len(d), {span})",
            f"v = {value}",
            "d[i] = int(v) if st.element_is_int else float(v)",
        ]

    def _gen_builtin(self, instr, lines: list[str], env: dict) -> None:
        spec = BUILTINS[instr.callee]
        impl = self._name(env, spec.impl, "fn")
        args = "".join(f", {self._expr(arg, env)}" for arg in instr.args)
        call = f"{impl}(interp{args})"
        if instr.result is None:
            lines.append(call)
            return
        if spec.returns == "int":
            call = f"int({call})"
        elif spec.returns == "float":
            call = f"float({call})"
        lines.append(f"regs[{instr.result.index}] = {call}")

    def _gen_terminator(
        self, term, block, block_pc, retired, cost, lines: list[str], env: dict
    ) -> None:
        lines.append(f"counts[0] += {retired}")
        lines.append(f"counts[1] += {cost}")
        cls = type(term)
        if cls is Jump:
            lines.append(f"return {block_pc[id(term.target)]}")
            return
        if cls is Branch:
            then_pc = block_pc[id(term.then_block)]
            else_pc = block_pc[id(term.else_block)]
            cond = self._expr(term.cond, env)
            lines.append(f"return {then_pc} if ({cond}) != 0 else {else_pc}")
            return
        if cls is Ret:
            if self.budget is not None:
                lines += [
                    f"if counts[0] > {self.budget}:",
                    "    raise InterpreterError('instruction budget exceeded')",
                ]
            return_type = self.current_function.return_type
            if term.value is None:
                lines.append("engine.ret_value = None")
            else:
                lines.append(f"v = {self._expr(term.value, env)}")
                if return_type == INT:
                    lines += ["if v is not None:", "    v = int(v)"]
                elif return_type == FLOAT:
                    lines += ["if v is not None:", "    v = float(v)"]
                lines.append("engine.ret_value = v")
            lines.append("return -1")
            return
        raise InterpreterError(
            f"unknown terminator {cls.__name__}", term.span
        )

    # -- user calls (closure steps) ----------------------------------------

    def _emit_call(self, instr, next_pc):
        callee = self.interp.module.function(instr.callee)
        shell = self.shells[instr.callee]
        binds = tuple(
            (param.index, self.getter(arg))
            for param, arg in zip(callee.params, instr.args)
        )
        res = instr.result.index if instr.result is not None else None
        engine = self.engine

        def step(regs):
            depth = engine.depth + 1
            if depth > _MAX_CALL_DEPTH:
                raise InterpreterError(
                    "call stack exhausted (runaway recursion?)"
                )
            engine.depth = depth
            callee_regs = [None] * shell.num_registers
            for dst, get in binds:
                callee_regs[dst] = get(regs)
            value = engine.exec_plain(shell, callee_regs)
            engine.depth = depth - 1
            if res is not None:
                regs[res] = value
            return next_pc

        return step


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


class BytecodeEngine:
    """Owns the decoded streams for one :class:`Interpreter` instance."""

    def __init__(self, interp):
        self.interp = interp
        # Shared mutable [instructions_retired, total_cost]; terminator
        # closures bump it once per block.
        self.counts = [interp.instructions_retired, interp.total_cost]
        self.shells = {
            name: DecodedFunction(function)
            for name, function in interp.module.functions.items()
        }
        self.depth = 0
        self.ret_value = None
        self._decoded = False
        self._fused = None

    def _decode(self) -> None:
        if self.interp.observer is None:
            PlainDecoder(self).decode_module()
        else:
            from repro.kremlib.fastpath import FusedDecoder

            self._fused = FusedDecoder(self, self.interp.observer)
            self._fused.decode_module()
        self._decoded = True

    def run(self, entry: str, args: tuple):
        interp = self.interp
        observer = interp.observer
        if not self._decoded:
            self._decode()
        self.counts[0] = interp.instructions_retired
        self.counts[1] = interp.total_cost
        self.depth = 0
        if observer is not None:
            observer.on_run_start(interp)
            self._fused.reset_run_state()
        function = interp.module.function(entry)
        shell = self.shells[entry]
        if len(args) != len(function.params):
            raise InterpreterError(
                f"{entry}() expects {len(function.params)} arguments, "
                f"got {len(args)}"
            )
        registers: list = [None] * shell.num_registers
        for index, arg in zip(shell.param_indices, args):
            registers[index] = arg
        if observer is None:
            value = self.exec_plain(shell, registers)
        else:
            value = self._fused.exec_entry(shell, function, registers)
        interp.instructions_retired = self.counts[0]
        interp.total_cost = self.counts[1]
        if observer is not None:
            observer.on_run_end(interp)
        return RunResult(
            value=value,
            output=list(interp.output),
            instructions_retired=interp.instructions_retired,
            total_cost=interp.total_cost,
        )

    def exec_plain(self, dfunc: DecodedFunction, registers: list):
        code = dfunc.code
        pc = 0
        while pc >= 0:
            pc = code[pc](registers)
        return self.ret_value

    def exec_fused(self, dfunc: DecodedFunction, ctx: tuple):
        """Run one activation of a fused (profiling) stream.

        ``ctx`` is ``(registers, shadow_registers, control_stack)`` — the
        fused closures carry the profiler hook bodies inline and only need
        this per-activation state threaded through.
        """
        code = dfunc.code
        pc = 0
        while pc >= 0:
            pc = code[pc](ctx)
        return self.ret_value
