"""Ahead-of-time compiler: MiniC IR to native Python functions.

The bytecode engine (:mod:`repro.interp.bytecode`) removed per-instruction
dispatch by predecoding each basic block into step closures, but kept the
``while pc >= 0: pc = code[pc](regs)`` trampoline and a shared register
*list* per activation. This module removes those too: each MiniC function
compiles to ONE Python function whose

* registers are plain locals (``r3``, not ``regs[3]``),
* straight-line segments are single generated blocks with no dispatch,
* branches and natural loops are native ``if``/``while True`` control flow
  (with ``continue``/``break`` for back edges and loop exits), and
* calls are direct Python calls between the generated functions.

Two flavors share the structurer and the statement generators:

* **plain** (``observer=None``) additionally performs *quickening* —
  forward-substituting single-use pure results into the immediately
  following consumer, so hot opcode pairs like compare+branch fuse into
  ``if r1 < r2:`` with no materialized 0/1 temp. Substitution is restricted
  to adjacent, provably reorder-safe pairs (no ``/ %`` sources or
  consumers, exactly one read, same block), so observable behavior —
  including error ordering — is unchanged.
* **fused** bakes the :class:`~repro.kremlib.profiler.KremlinProfiler`
  hook bodies in at codegen time. With metrics collection enabled it
  reuses the exact :class:`~repro.kremlib.segments.SegmentEmitter`
  fragments the fused bytecode decoder emits, statement for statement, so
  observability counters match the bytecode engine's. Otherwise it runs a
  *symbolic timestamp algebra* over each straight-line segment
  (:class:`_SymTS`): per-event timestamp vectors stay symbolic — a const
  floor plus per-source offsets over the segment's resolved shadow
  entries — and only materialize when stored past a flush point. Dead
  shadow stores are elided by block liveness, consumed (dominated) events
  are skipped in the region fold, and the entry-resolution cache
  survives region boundaries it provably cannot invalidate. All of it is
  value-exact: serialized profiles stay bit-identical across the tree,
  bytecode, and compiled engines (the differential suite, fuzz matrix,
  and codegen-smoke CI job enforce it). Quickening is disabled in this
  flavor: every register write also writes its shadow.

Structuring is best-effort with hard safety rails: reducible CFGs from the
MiniC lowerer structure exactly (branch joins come from the postdominator
tree, loops from the natural-loop forest); anything that does not — or
that would exceed the bounded code-duplication budget, Python's nesting
limits, or the loop-depth guard — falls back to a per-function dispatch
loop (``while True: if _b == k: ...``), which is still faster than the
closure trampoline. A whole-module retry with forced dispatch guards
against ``compile()`` rejecting deeply nested output.

Generated source is **instance-independent**: interpreter-specific objects
(global array storages, scalar cells, the interpreter itself) are referred
to by reserved names (``_go_{name}``/``_ga_{name}``/``_gid_{name}``,
``cells``, ``interp``) bound into the exec environment by
:class:`repro.interp.runtime.CompiledEngine` at prepare time. Program-
scoped objects (spans, string constants, builtin impls) live in the unit's
``program_env``. Units are therefore cached per ``CompiledProgram`` keyed
by flavor/budget/depth/metrics — code that mutates the IR must recompile
from a fresh program, exactly like re-running ``kremlin_cc``.
"""

from __future__ import annotations

import re
import time

from repro.analysis.dominators import postdominator_tree
from repro.analysis.loops import find_natural_loops
from repro.interp.builtins import BUILTINS
from repro.interp.bytecode import (
    _PURE_BINOP_EXPRS,
    _block_totals,
    _is_inline_literal,
)
from repro.interp.errors import InterpreterError
from repro.interp.interpreter import _MAX_CALL_DEPTH, _global_key
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Copy,
    Jump,
    Load,
    RegionEnter,
    RegionExit,
    Ret,
    Store,
    UnOp,
)
from repro.ir.types import FLOAT, INT, ArrayType
from repro.ir.values import Constant, GlobalRef, Register, StringConst
from repro.kremlib import shadow
from repro.kremlib.segments import SegmentEmitter

_PAD = "    "

# Ops whose results may be forward-substituted (quickened) into the next
# consumer: pure and non-raising on type-checked operands. Division,
# modulo, and shifts stay materialized — they raise, so reordering their
# evaluation past a consumer's own checks would change which error wins.
_FUSABLE_BINOPS = frozenset(
    {"+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
)

# Raw boolean-context forms used only in branch-condition position, where
# ``(1 if a < b else 0) != 0`` is exactly ``a < b`` (NaN included) and
# ``(1 if (a != 0 and b != 0) else 0) != 0`` is exactly the bare test.
_RAW_COND_TEMPLATES = {
    "<": "{a} < {b}",
    "<=": "{a} <= {b}",
    ">": "{a} > {b}",
    ">=": "{a} >= {b}",
    "==": "{a} == {b}",
    "!=": "{a} != {b}",
    "&&": "({a} != 0 and {b} != 0)",
    "||": "({a} != 0 or {b} != 0)",
}

# Structurer safety rails: Python rejects ~20 statically nested blocks and
# deep inlining duplicates code, so anything past these bounds takes the
# dispatch-loop fallback instead.
_MAX_INDENT = 40
_MAX_LOOP_NESTING = 16

# Index operands that may be repeated verbatim in the fast/slow bounds
# check arms without changing evaluation count: bare locals and
# non-negative integer literals.
_SIMPLE_INDEX_RE = re.compile(r"(?:r\d+|_gv\d+|\d+)\Z")


class _Unstructured(Exception):
    """CFG shape the structurer won't express natively; use dispatch."""


class _LoopFrame:
    """One ``while True:`` currently open during structured emission."""

    __slots__ = ("loop", "exits", "var", "parent")

    def __init__(self, loop, var: str, parent):
        self.loop = loop
        self.exits: list = []
        self.var = var
        self.parent = parent

    def exit_index(self, target) -> int:
        for k, block in enumerate(self.exits):
            if block is target:
                return k
        self.exits.append(target)
        return len(self.exits) - 1

    @property
    def nesting(self) -> int:
        depth = 1
        frame = self.parent
        while frame is not None:
            depth += 1
            frame = frame.parent
        return depth


def _register_read_counts(function) -> dict[int, int]:
    """How many times each register index is read anywhere in the
    function (operand positions of instructions and terminators)."""
    counts: dict[int, int] = {}
    for block in function.blocks:
        for instr in block.instructions:
            for op in getattr(instr, "operands", ()):
                if type(op) is Register:
                    counts[op.index] = counts.get(op.index, 0) + 1
        for op in getattr(block.terminator, "operands", ()):
            if type(op) is Register:
                counts[op.index] = counts.get(op.index, 0) + 1
    return counts


def _register_write_counts(function) -> dict[int, int]:
    """How many times each register index is written (params count as one
    write; every instruction result counts as one per occurrence)."""
    counts: dict[int, int] = {}
    for p in function.params:
        counts[p.index] = counts.get(p.index, 0) + 1
    for block in function.blocks:
        for instr in block.instructions:
            result = getattr(instr, "result", None)
            if result is not None and type(result) is Register:
                counts[result.index] = counts.get(result.index, 0) + 1
    return counts


class _FunctionEmitter:
    """Compiles one function to generated source (plain flavor)."""

    fused = False

    def __init__(self, m: "_ModuleEmitter", function):
        self.m = m
        self.function = function
        self.budget = m.budget
        self.forest = find_natural_loops(function)
        self.ipdom = postdominator_tree(function).idom
        self.emitting: set[int] = set()
        self.emissions = 0
        self.max_emissions = 2 * len(function.blocks) + 8
        self.next_exit_var = 0
        self.r_used: set[int] = set()
        self.pending_val: dict[int, str] = {}
        self.pending_raw: dict[int, str] = {}
        self.read_counts = _register_read_counts(function)
        self.write_counts = _register_write_counts(function)
        self.fallback = False
        # Locals beat the shared counts list when no budget needs a live
        # global view; single-block functions flush literals directly.
        self.uses_ir = (
            not self.fused
            and m.budget is None
            and len(function.blocks) > 1
        )
        # Deferred retired/cost totals: with no budget watching counts[0],
        # block totals accumulate at codegen time and flush as a single
        # pair of adds per control-flow departure instead of per block.
        self.pend_ir = 0
        self.pend_ct = 0
        # Loop-invariant scalar globals currently cached in locals, one
        # map per open loop (innermost last).
        self.hoist_maps: list[dict[str, str]] = []
        self._next_gv = 0
        # Single-assignment array registers whose .data/len/element kind
        # can be cached at the definition: index -> (data, size, is_int).
        self.arr_cache: dict[int, tuple[str, str, bool]] = {}
        self.arr_cache_used: set[int] = set()
        self._param_cache_lines: dict[int, list[str]] = {}
        self._collect_array_caches()
        self._sym = 0

    def _collect_array_caches(self) -> None:
        fn = self.function
        for p in fn.params:
            if not isinstance(p.type, ArrayType):
                continue
            if self.write_counts.get(p.index, 0) != 1:
                continue
            data = f"_da{p.index}"
            lines = [f"{data} = r{p.index}.data"]
            count = p.type.element_count
            if count is not None:
                size = str(count)
            else:
                size = f"_dl{p.index}"
                lines.append(f"{size} = len({data})")
            self.arr_cache[p.index] = (data, size, p.type.element == INT)
            self._param_cache_lines[p.index] = lines
        for block in fn.blocks:
            for instr in block.instructions:
                if type(instr) is not Alloca:
                    continue
                res = instr.result.index
                if self.write_counts.get(res, 0) != 1:
                    continue
                self.arr_cache[res] = (
                    f"_da{res}",
                    str(instr.array_type.element_count),
                    instr.array_type.element == INT,
                )

    def _arr_info(self, mem, rendered: str):
        """Cached (data, size, is_int) for a local-array access, or None.

        Only valid when the access goes through the register itself (not
        a quickened substitute expression)."""
        if type(mem) is not Register or rendered != f"r{mem.index}":
            return None
        info = self.arr_cache.get(mem.index)
        if info is not None:
            self.arr_cache_used.add(mem.index)
        return info

    # -- entry point -------------------------------------------------------

    def emit(self) -> list[str]:
        body: list[str] = []
        if self.m.force_fallback:
            self.fallback = True
            self._emit_dispatch(body)
        else:
            try:
                self._emit_into(body, self.function.entry, None, None, 1)
            except _Unstructured:
                self.fallback = True
                body = []
                self._reset_state()
                self._emit_dispatch(body)
        return self._assemble(body)

    def _reset_state(self) -> None:
        self.emitting.clear()
        self.emissions = 0
        self.pending_val.clear()
        self.pending_raw.clear()
        self.pend_ir = 0
        self.pend_ct = 0
        self.hoist_maps.clear()
        self.arr_cache_used.clear()

    def _assemble(self, body: list[str]) -> list[str]:
        fn = self.function
        params = [p.index for p in fn.params]
        pieces = [f"r{i}" for i in params]
        if self.fused:
            pieces += [f"s{i}" for i in params]
        pieces.append("_d")
        lines = [f"def _mc_{fn.name}({', '.join(pieces)}):"]
        lines.append(_PAD + f"if _d > {_MAX_CALL_DEPTH}:")
        lines.append(_PAD + "    raise InterpreterError(")
        lines.append(_PAD + "        'call stack exhausted (runaway recursion?)')")
        if self.fused:
            lines.append(_PAD + "control = []")
        r_init = sorted(self.r_used - set(params))
        if r_init:
            lines.append(
                _PAD + " = ".join(f"r{i}" for i in r_init) + " = None"
            )
        if self.fused:
            s_init = sorted(self.s_used - set(params))
            if s_init:
                lines.append(
                    _PAD + " = ".join(f"s{i}" for i in s_init) + " = None"
                )
        for i in sorted(self._param_cache_lines):
            if i in self.arr_cache_used:
                for line in self._param_cache_lines[i]:
                    lines.append(_PAD + line)
        if self.uses_ir:
            lines.append(_PAD + "_ir = 0")
            lines.append(_PAD + "_ct = 0")
        lines += body
        return lines

    # -- structured emission ----------------------------------------------

    def _emit_into(self, out, block, stop, frame, indent) -> None:
        if indent > _MAX_INDENT or self.emissions > self.max_emissions:
            raise _Unstructured()
        self.emissions += 1
        loop = self.forest.loop_of(block)
        current = frame.loop if frame is not None else None
        if loop is not current:
            if (
                loop is not None
                and loop.header is block
                and loop.parent is current
            ):
                self._emit_loop(out, loop, stop, frame, indent)
                return
            raise _Unstructured()  # irreducible entry / level skip
        self._emit_block(out, block, stop, frame, indent)

    def _emit_loop(self, out, loop, stop, frame, indent) -> None:
        var = f"_x{self.next_exit_var}"
        self.next_exit_var += 1
        nf = _LoopFrame(loop, var, frame)
        if nf.nesting > _MAX_LOOP_NESTING:
            raise _Unstructured()
        pad = _PAD * indent
        self._flush_counts(out, pad)
        hoist = self._loop_hoist(loop)
        for name, local in hoist.items():
            out.append(pad + f"{local} = cells[{name!r}]")
        body: list[str] = []
        self.hoist_maps.append(hoist)
        try:
            self._emit_into(body, loop.header, None, nf, indent + 1)
        finally:
            self.hoist_maps.pop()
        exits = nf.exits
        if len(exits) == 1:
            # Single exit target: the dispatch var is dead, strip it.
            marker = f"{var} = 0"
            body = [line for line in body if line.strip() != marker]
        out.append(pad + "while True:")
        out += body
        if not exits:
            return  # genuinely infinite loop: nothing ever follows
        if len(exits) == 1:
            self._goto(out, exits[0], stop, frame, indent)
            return
        for k, target in enumerate(exits):
            sub: list[str] = []
            self._goto(sub, target, stop, frame, indent + 1)
            keyword = "if" if k == 0 else "elif"
            out.append(pad + f"{keyword} {var} == {k}:")
            out += sub if sub else [pad + _PAD + "pass"]

    def _goto(self, out, target, stop, frame, indent) -> None:
        pad = _PAD * indent
        if target is stop:
            # Falls through to wherever the join is emitted; the join is
            # shared between arms, so deferred counts settle here.
            self._flush_counts(out, pad)
            return
        if frame is not None:
            if target is frame.loop.header:
                self._flush_counts(out, pad)
                out.append(pad + "continue")
                return
            if target not in frame.loop.blocks:
                self._flush_counts(out, pad)
                k = frame.exit_index(target)
                out.append(pad + f"{frame.var} = {k}")
                out.append(pad + "break")
                return
        if id(target) in self.emitting:
            raise _Unstructured()  # cycle the loop forest didn't cover
        self._emit_into(out, target, stop, frame, indent)

    def _emit_block(self, out, block, stop, frame, indent) -> None:
        block_id = id(block)
        self.emitting.add(block_id)
        try:
            frag: list[str] = []
            self._gen_head(frag, block)
            self._gen_instructions(frag, block)
            pad = _PAD * indent
            out += [pad + line for line in frag]
            self._gen_terminator(out, block, stop, frame, indent)
        finally:
            self.emitting.discard(block_id)

    def _gen_terminator(self, out, block, stop, frame, indent) -> None:
        term = block.terminator
        retired, cost = _block_totals(block)
        pad = _PAD * indent
        if type(term) is Ret:
            frag = self._ret_block_lines(term, retired, cost)
            out += [pad + line for line in frag]
            return
        frag = []
        self._preterm(frag, block, term)
        self._counts_nonret(frag, retired, cost)
        out += [pad + line for line in frag]
        if type(term) is Jump:
            self._goto(out, term.target, stop, frame, indent)
            return
        if type(term) is Branch:
            self._emit_branch(out, block, term, stop, frame, indent)
            return
        raise InterpreterError(
            f"unknown terminator {type(term).__name__}", term.span
        )

    def _emit_branch(self, out, block, term, stop, frame, indent) -> None:
        cond = self._cond_src(term.cond)
        join = self.ipdom.get(block)
        inline = join is not None and join is not stop
        arm_stop = join if inline else stop
        # Each arm inherits the same deferred-count balance and settles it
        # on its own path; the shared join below restarts from zero.
        saved = (self.pend_ir, self.pend_ct)
        then_sub: list[str] = []
        self._goto(then_sub, term.then_block, arm_stop, frame, indent + 1)
        self.pend_ir, self.pend_ct = saved
        else_sub: list[str] = []
        self._goto(else_sub, term.else_block, arm_stop, frame, indent + 1)
        self.pend_ir = 0
        self.pend_ct = 0
        pad = _PAD * indent
        if then_sub and else_sub:
            out.append(pad + f"if {cond}:")
            out += then_sub
            out.append(pad + "else:")
            out += else_sub
        elif then_sub:
            out.append(pad + f"if {cond}:")
            out += then_sub
        elif else_sub:
            out.append(pad + f"if not ({cond}):")
            out += else_sub
        # both arms empty: degenerate branch straight to the join
        if inline:
            self._goto(out, join, stop, frame, indent)

    # -- dispatch-loop fallback --------------------------------------------

    def _emit_dispatch(self, out: list[str]) -> None:
        fn = self.function
        keys = {id(block): k for k, block in enumerate(fn.blocks)}
        pad2 = _PAD * 2
        pad3 = _PAD * 3
        out.append(_PAD + f"_b = {keys[id(fn.entry)]}")
        out.append(_PAD + "while True:")
        for k, block in enumerate(fn.blocks):
            out.append(pad2 + f"if _b == {k}:")
            frag: list[str] = []
            self._gen_head(frag, block)
            self._gen_instructions(frag, block)
            term = block.terminator
            retired, cost = _block_totals(block)
            if type(term) is Ret:
                frag += self._ret_block_lines(term, retired, cost)
            else:
                self._preterm(frag, block, term)
                self._counts_nonret(frag, retired, cost)
                self._flush_counts(frag, "")
                if type(term) is Jump:
                    frag.append(f"_b = {keys[id(term.target)]}")
                    frag.append("continue")
                elif type(term) is Branch:
                    cond = self._cond_src(term.cond)
                    then_key = keys[id(term.then_block)]
                    else_key = keys[id(term.else_block)]
                    frag.append(
                        f"_b = {then_key} if {cond} else {else_key}"
                    )
                    frag.append("continue")
                else:
                    raise InterpreterError(
                        f"unknown terminator {type(term).__name__}",
                        term.span,
                    )
            out += [pad3 + line for line in frag]

    # -- per-block pieces --------------------------------------------------

    def _gen_head(self, frag: list[str], block) -> None:
        if self.budget is not None:
            frag.append(f"if counts[0] > {self.budget}:")
            frag.append(
                "    raise InterpreterError('instruction budget exceeded')"
            )

    def _gen_instructions(self, frag: list[str], block) -> None:
        instrs = [i for i in block.instructions if not self._skip_instr(i)]
        for pos, instr in enumerate(instrs):
            nxt = (
                instrs[pos + 1]
                if pos + 1 < len(instrs)
                else block.terminator
            )
            self._gen_instr(frag, instr, nxt)

    def _skip_instr(self, instr) -> bool:
        # Region markers have no semantic effect when nothing observes
        # them; block totals still count them as retired.
        cls = type(instr)
        return cls is RegionEnter or cls is RegionExit

    def _counts_nonret(self, frag: list[str], retired, cost) -> None:
        if self.uses_ir:
            self.pend_ir += retired
            self.pend_ct += cost
        else:
            frag.append(f"counts[0] += {retired}")
            frag.append(f"counts[1] += {cost}")

    def _flush_counts(self, out: list[str], pad: str) -> None:
        """Settle the deferred block totals before control leaves the
        straight-line region they were accumulated over."""
        if self.pend_ir or self.pend_ct:
            out.append(pad + f"_ir += {self.pend_ir}")
            out.append(pad + f"_ct += {self.pend_ct}")
            self.pend_ir = 0
            self.pend_ct = 0

    def _loop_hoist(self, loop) -> dict[str, str]:
        """Scalar globals read but never written inside ``loop`` (and with
        no user call that could write them): cache them in locals for the
        loop's duration. Builtins cannot touch global cells."""
        if self.fused:
            return {}
        loads: list[str] = []
        killed: set[str] = set()
        for block in self.function.blocks:
            if block not in loop.blocks:
                continue
            for instr in block.instructions:
                cls = type(instr)
                if cls is Load or cls is Store:
                    mem = instr.mem
                    if type(mem) is GlobalRef and not self.m.is_array_global(
                        mem.name
                    ):
                        if cls is Load:
                            loads.append(mem.name)
                        else:
                            killed.add(mem.name)
                elif cls is Call and not instr.is_builtin:
                    return {}
        hoist: dict[str, str] = {}
        for name in loads:
            if name in killed or name in hoist or self._hoisted(name):
                continue
            self._next_gv += 1
            hoist[name] = f"_gv{self._next_gv}"
        return hoist

    def _hoisted(self, name: str) -> str | None:
        for mapping in reversed(self.hoist_maps):
            local = mapping.get(name)
            if local is not None:
                return local
        return None

    def _preterm(self, frag: list[str], block, term) -> None:
        """Hook: profiling work before the counts/transfer (fused only)."""

    def _ret_block_lines(self, term, retired, cost) -> list[str]:
        frag: list[str] = []
        if self.uses_ir:
            frag.append(f"counts[0] += _ir + {self.pend_ir + retired}")
            frag.append(f"counts[1] += _ct + {self.pend_ct + cost}")
            self.pend_ir = 0
            self.pend_ct = 0
        else:
            frag.append(f"counts[0] += {retired}")
            frag.append(f"counts[1] += {cost}")
        if self.budget is not None:
            frag.append(f"if counts[0] > {self.budget}:")
            frag.append(
                "    raise InterpreterError('instruction budget exceeded')"
            )
        if term.value is None:
            frag.append("return None")
            return frag
        frag.append(f"v = {self._operand(term.value)}")
        frag += self._ret_conversion_lines()
        frag.append("return v")
        return frag

    def _ret_conversion_lines(self) -> list[str]:
        return_type = self.function.return_type
        if return_type == INT:
            return ["if v is not None:", "    v = int(v)"]
        if return_type == FLOAT:
            return ["if v is not None:", "    v = float(v)"]
        return []

    # -- operands and quickening -------------------------------------------

    def _operand(self, operand) -> str:
        if type(operand) is Register:
            pending = self.pending_val.pop(operand.index, None)
            if pending is not None:
                self.pending_raw.pop(operand.index, None)
                return pending
            self.r_used.add(operand.index)
            return f"r{operand.index}"
        if type(operand) is Constant:
            if _is_inline_literal(operand.value):
                return repr(operand.value)
            return self.m.const_name(operand.value)
        if type(operand) is StringConst:
            # "str" prefix: "_s{n}" would collide with SegmentEmitter's
            # timestamp temporaries in fused functions.
            return self.m._name(operand.value, "str")
        if type(operand) is GlobalRef:
            if self.m.is_array_global(operand.name):
                return self.m.global_obj(operand.name)
            return f"cells[{operand.name!r}]"
        raise InterpreterError(f"cannot evaluate operand {operand!r}")

    def _cond_src(self, cond) -> str:
        if type(cond) is Register:
            raw = self.pending_raw.pop(cond.index, None)
            if raw is not None:
                self.pending_val.pop(cond.index, None)
                return raw
        return f"({self._operand(cond)}) != 0"

    def _can_pend(self, instr, nxt) -> bool:
        if self.fused:
            return False
        result = instr.result
        if result is None or type(result) is not Register:
            return False
        index = result.index
        if self.read_counts.get(index, 0) != 1:
            return False
        reads = sum(
            1
            for op in getattr(nxt, "operands", ())
            if type(op) is Register and op.index == index
        )
        if reads != 1:
            return False
        # Div/mod consumers check their divisor before evaluating other
        # operands; substitution would reorder errors past that check.
        if type(nxt) is BinOp and nxt.op in ("/", "%"):
            return False
        return True

    # -- statement generators ----------------------------------------------

    def _post_compute(self, frag: list[str], instr) -> None:
        """Hook: the on_compute/on_builtin event (fused only)."""

    def _gen_instr(self, frag: list[str], instr, nxt) -> None:
        cls = type(instr)
        if cls is BinOp:
            self._gen_binop(frag, instr, nxt)
        elif cls is Load:
            self._gen_load(frag, instr, nxt)
        elif cls is Store:
            self._gen_store(frag, instr)
        elif cls is Copy:
            self._gen_copy(frag, instr, nxt)
        elif cls is Cast:
            self._gen_cast(frag, instr, nxt)
        elif cls is UnOp:
            self._gen_unop(frag, instr, nxt)
        elif cls is Call:
            if instr.is_builtin:
                self._gen_builtin(frag, instr)
            else:
                self._gen_user_call(frag, instr)
        elif cls is Alloca:
            count = instr.array_type.element_count
            assert count is not None
            is_int = instr.array_type.element == INT
            res = instr.result.index
            frag.append(f"r{res} = ArrayStorage({count}, {is_int})")
            if res in self.arr_cache:
                frag.append(f"_da{res} = r{res}.data")
            self._post_compute(frag, instr)
        else:
            raise InterpreterError(
                f"unknown instruction {cls.__name__}", instr.span
            )

    def _gen_binop(self, frag: list[str], instr, nxt) -> None:
        op = instr.op
        a = self._operand(instr.lhs)
        b = self._operand(instr.rhs)
        res = instr.result.index
        template = _PURE_BINOP_EXPRS.get(op)
        if template is not None:
            value = template.format(a=a, b=b)
            if op in _FUSABLE_BINOPS and self._can_pend(instr, nxt):
                self.pending_val[res] = f"({value})"
                raw = _RAW_COND_TEMPLATES.get(op)
                if raw is not None:
                    self.pending_raw[res] = raw.format(a=a, b=b)
                return
            frag.append(f"r{res} = {value}")
            self._post_compute(frag, instr)
            return
        span = self.m._name(instr.span, "sp")
        if op == "/":
            frag += [
                f"b = {b}",
                "if b == 0:",
                f"    raise InterpreterError('division by zero', {span})",
                f"a = {a}",
                "if isinstance(a, int) and isinstance(b, int):",
                "    q = abs(a) // abs(b)",
                f"    r{res} = -q if (a < 0) != (b < 0) else q",
                "else:",
                f"    r{res} = a / b",
            ]
        elif op == "%":
            frag += [
                f"b = {b}",
                "if b == 0:",
                f"    raise InterpreterError('modulo by zero', {span})",
                f"a = {a}",
                "q = abs(a) // abs(b)",
                "if (a < 0) != (b < 0):",
                "    q = -q",
                f"r{res} = a - q * b",
            ]
        else:
            raise InterpreterError(
                f"unknown binary operator {op!r}", instr.span
            )
        self._post_compute(frag, instr)

    def _gen_copy(self, frag: list[str], instr, nxt) -> None:
        value = self._operand(instr.operand)
        res = instr.result.index
        if self._can_pend(instr, nxt):
            self.pending_val[res] = f"({value})"
            return
        frag.append(f"r{res} = {value}")
        self._post_compute(frag, instr)

    def _gen_cast(self, frag: list[str], instr, nxt) -> None:
        conv = "int" if instr.target == INT else "float"
        value = f"{conv}({self._operand(instr.operand)})"
        res = instr.result.index
        if self._can_pend(instr, nxt):
            self.pending_val[res] = value
            return
        frag.append(f"r{res} = {value}")
        self._post_compute(frag, instr)

    def _gen_unop(self, frag: list[str], instr, nxt) -> None:
        operand = self._operand(instr.operand)
        res = instr.result.index
        if instr.op == "-":
            value, raw = f"-({operand})", None
        else:  # '!'
            value = f"0 if ({operand}) else 1"
            raw = f"(not ({operand}))"
        if self._can_pend(instr, nxt):
            self.pending_val[res] = f"({value})"
            if raw is not None:
                self.pending_raw[res] = raw
            return
        frag.append(f"r{res} = {value}")
        self._post_compute(frag, instr)

    def _gen_load(self, frag: list[str], instr, nxt) -> None:
        res = instr.result.index
        mem = instr.mem
        if type(mem) is GlobalRef and not self.m.is_array_global(mem.name):
            src = self._hoisted(mem.name) or f"cells[{mem.name!r}]"
            # A scalar-cell read cannot raise and nothing runs between
            # adjacent instructions, so it may quicken like a pure op.
            if self._can_pend(instr, nxt):
                self.pending_val[res] = src
                return
            frag.append(f"r{res} = {src}")
            self._post_compute(frag, instr)
            return
        span = self.m._name(instr.span, "sp")
        index = self._operand(instr.index)
        if type(mem) is GlobalRef:
            data = self.m.global_data(mem.name)
            size = self.m.global_size(mem.name)
            self._load_lines(frag, res, data, str(size), size, index, span)
        else:
            rendered = self._operand(mem)
            info = self._arr_info(mem, rendered)
            if info is not None:
                data, size_expr, _ = info
                static = int(size_expr) if size_expr.isdigit() else None
                self._load_lines(
                    frag, res, data, size_expr, static, index, span
                )
            else:
                frag.append(f"d = {rendered}.data")
                self._load_lines(frag, res, "d", "len(d)", None, index, span)
        self._post_compute(frag, instr)

    def _load_lines(
        self, frag, res, data, size_expr, static_size, index, span
    ) -> None:
        if (
            index.isdigit()
            and static_size is not None
            and int(index) < static_size
        ):
            # In-bounds constant index: the check is decided at codegen.
            frag.append(f"r{res} = {data}[{index}]")
            return
        if _SIMPLE_INDEX_RE.fullmatch(index):
            i = index
        else:
            frag.append(f"i = {index}")
            i = "i"
        frag += [
            f"if type({i}) is int and 0 <= {i} < {size_expr}:",
            f"    r{res} = {data}[{i}]",
            "else:",
            f"    r{res} = {data}[_slow_index({i}, {size_expr}, {span})]",
        ]

    def _gen_store(self, frag: list[str], instr) -> None:
        mem = instr.mem
        value = self._operand(instr.value)
        if type(mem) is GlobalRef and not self.m.is_array_global(mem.name):
            conv = self.m.scalar_conv(mem.name)
            frag.append(f"cells[{mem.name!r}] = {conv}({value})")
            self._post_compute(frag, instr)
            return
        span = self.m._name(instr.span, "sp")
        index = self._operand(instr.index)
        if type(mem) is GlobalRef:
            data = self.m.global_data(mem.name)
            size = self.m.global_size(mem.name)
            conv = "int" if self.m.global_elem_is_int(mem.name) else "float"
            self._store_lines(
                frag, data, str(size), size, index, conv, value, span
            )
        else:
            rendered = self._operand(mem)
            info = self._arr_info(mem, rendered)
            if info is not None:
                data, size_expr, is_int = info
                static = int(size_expr) if size_expr.isdigit() else None
                conv = "int" if is_int else "float"
                self._store_lines(
                    frag, data, size_expr, static, index, conv, value, span
                )
            else:
                frag += [
                    f"st = {rendered}",
                    "d = st.data",
                    f"i = {index}",
                    "if not (type(i) is int and 0 <= i < len(d)):",
                    f"    i = _slow_index(i, len(d), {span})",
                    f"v = {value}",
                    "d[i] = int(v) if st.element_is_int else float(v)",
                ]
        self._post_compute(frag, instr)

    def _store_lines(
        self, frag, data, size_expr, static_size, index, conv, value, span
    ) -> None:
        if (
            index.isdigit()
            and static_size is not None
            and int(index) < static_size
        ):
            frag.append(f"{data}[{index}] = {conv}({value})")
            return
        if _SIMPLE_INDEX_RE.fullmatch(index):
            # The slow arm binds the checked index first so a bad index
            # still raises before the value conversion, like the decoder.
            frag += [
                f"if type({index}) is int and 0 <= {index} < {size_expr}:",
                f"    {data}[{index}] = {conv}({value})",
                "else:",
                f"    i = _slow_index({index}, {size_expr}, {span})",
                f"    {data}[i] = {conv}({value})",
            ]
            return
        frag += [
            f"i = {index}",
            f"if not (type(i) is int and 0 <= i < {size_expr}):",
            f"    i = _slow_index(i, {size_expr}, {span})",
            f"{data}[i] = {conv}({value})",
        ]

    def _gen_builtin(self, frag: list[str], instr) -> None:
        spec = BUILTINS[instr.callee]
        impl = self.m.builtin_name(instr.callee)
        args = "".join(f", {self._operand(arg)}" for arg in instr.args)
        call = f"{impl}(interp{args})"
        if instr.result is None:
            frag.append(call)
        else:
            if spec.returns == "int":
                call = f"int({call})"
            elif spec.returns == "float":
                call = f"float({call})"
            frag.append(f"r{instr.result.index} = {call}")
        self._post_compute(frag, instr)

    def _gen_user_call(self, frag: list[str], instr) -> None:
        args = "".join(
            f"{self._operand(arg)}, " for arg in instr.args
        )
        call = f"_mc_{instr.callee}({args}_d + 1)"
        if instr.result is not None:
            frag.append(f"r{instr.result.index} = {call}")
        else:
            frag.append(call)


class _SymSource:
    """One resolved shadow input of the current segment.

    ``entry`` sources hold a resolved ``(times, valid)`` pair in numbered
    locals behind an ``is not None`` guard; ``ctrl`` is the segment's
    control-top resolution (``_ctm``/``_cvl``); ``list`` is a fully
    materialized timestamp vector (no guard, full depth)."""

    __slots__ = ("kind", "tm", "vl", "guard", "origin")

    def __init__(
        self,
        kind: str,
        tm: str,
        vl: str | None,
        guard: str | None,
        origin: "_SymTS | None" = None,
    ):
        self.kind = kind
        self.tm = tm
        self.vl = vl
        self.guard = guard
        self.origin = origin


class _SymTS:
    """A deferred timestamp vector: elementwise max over ``parts`` (source
    -> added offset) floored at ``const``. Materializes lazily; most event
    results are consumed symbolically and never allocate a list.

    ``cover`` maps every source this value provably dominates to the
    largest offset ``o`` with ``self >= source + o`` (pointwise, over the
    source's covered positions) — used to prune redundant fold loops."""

    __slots__ = ("parts", "const", "conc", "cover", "_as_source")

    def __init__(self, parts: dict, const: int, cover: dict):
        self.parts = parts
        self.const = const
        self.cover = cover
        self.conc: str | None = None
        self._as_source: _SymSource | None = None

    def as_source(self) -> _SymSource:
        source = self._as_source
        if source is None:
            source = _SymSource("list", self.conc, None, None, self)
            self._as_source = source
        return source


def _live_out_sets(function) -> dict[int, frozenset]:
    """Backward liveness of value-register indices at each block's exit.

    Shadow reads only occur where the value register is read (shadow_ops,
    call args, branch conditions, return values are all operand
    positions), so this over-approximates shadow liveness."""
    use: dict[int, set] = {}
    defs: dict[int, set] = {}
    succ: dict[int, list] = {}
    for block in function.blocks:
        u: set = set()
        d: set = set()
        for instr in block.instructions:
            for op in getattr(instr, "operands", ()):
                if type(op) is Register and op.index not in d:
                    u.add(op.index)
            result = getattr(instr, "result", None)
            if result is not None and type(result) is Register:
                d.add(result.index)
        term = block.terminator
        for op in getattr(term, "operands", ()):
            if type(op) is Register and op.index not in d:
                u.add(op.index)
        use[id(block)] = u
        defs[id(block)] = d
        succ[id(block)] = list(term.successors)
    live_in: dict[int, frozenset] = {
        id(block): frozenset() for block in function.blocks
    }
    live_out: dict[int, frozenset] = dict(live_in)
    changed = True
    while changed:
        changed = False
        for block in reversed(function.blocks):
            key = id(block)
            out: set = set()
            for target in succ[key]:
                out |= live_in[id(target)]
            fs_out = frozenset(out)
            if fs_out != live_out[key]:
                live_out[key] = fs_out
            fs_in = frozenset(use[key] | (out - defs[key]))
            if fs_in != live_in[key]:
                live_in[key] = fs_in
                changed = True
    return live_out


class _FusedFunctionEmitter(_FunctionEmitter, SegmentEmitter):
    """Compiles one function with KremlinProfiler semantics baked in.

    Shadow registers are locals (``s{i}``); the profiling fragments come
    from :class:`SegmentEmitter`, shared with the fused bytecode decoder,
    so both engines emit identical profiling arithmetic. Segments reset at
    every block boundary and flush at every terminator and call — the same
    boundaries the bytecode decoder's closures impose — which keeps the
    fold order, and therefore the serialized profile, bit-identical.
    """

    fused = True

    def __init__(self, m: "_FusedModuleEmitter", function):
        super().__init__(m, function)
        self.s_used: set[int] = set()
        self._metrics_on = m.metrics_on
        self._max_depth = m.max_depth
        self._vthr = m.vector_threshold
        self.info = m.instrumentation.get(function.name)
        # Symbolic segment algebra: events stay as (sources, offsets)
        # tuples and only materialize timestamp lists where an entry
        # escapes the segment. Values are provably identical to the
        # per-event arithmetic, but the fastpath diagnostic counters are
        # not, so metrics runs keep the mirrored SegmentEmitter fragments.
        self.symbolic = not m.metrics_on
        self.live_out = (
            _live_out_sets(function) if self.symbolic else {}
        )
        self._seg_reset()

    # SegmentEmitter host hook: shadow registers are locals here.
    def _sreg(self, index: int) -> str:
        self.s_used.add(index)
        return f"s{index}"

    def _reset_state(self) -> None:
        super()._reset_state()
        self._seg_reset()

    # -- symbolic segment engine ------------------------------------------

    def _seg_reset(self) -> None:
        SegmentEmitter._seg_reset(self)
        self._src_reg: dict[int, _SymSource] = {}
        self._ctrl_source: _SymSource | None = None
        self._pending_sreg: dict[int, _SymTS] = {}
        self._seg_events: list[_SymTS] = []
        self._seg_consumed: set[int] = set()

    def _gen_event(
        self,
        lines,
        cost,
        reg_indices,
        cell_expr=None,
        result_index=None,
        fresh_control=False,
    ):
        if not self.symbolic:
            return SegmentEmitter._gen_event(
                self,
                lines,
                cost,
                reg_indices,
                cell_expr=cell_expr,
                result_index=result_index,
                fresh_control=fresh_control,
            )
        return self._sym_event(
            lines, cost, reg_indices, cell_expr, result_index, fresh_control
        )

    def _event_value(
        self, lines, cost, reg_indices, cell_expr=None, fresh_control=False
    ) -> str:
        """Like :meth:`_gen_event` but always yields a materialized
        timestamp name (the entry escapes the segment)."""
        if not self.symbolic:
            return SegmentEmitter._gen_event(
                self,
                lines,
                cost,
                reg_indices,
                cell_expr=cell_expr,
                fresh_control=fresh_control,
            )
        ts = self._sym_event(
            lines, cost, reg_indices, cell_expr, None, fresh_control
        )
        return self._materialize(lines, ts)

    def _sym_event(
        self, lines, cost, reg_indices, cell_expr, result_index, fresh_control
    ) -> _SymTS:
        self._seg_load(lines)
        raw: dict[_SymSource, int] = {}
        const = 0
        conc_covers: list[dict] = []
        all_covers: list[dict] = []
        for index in reg_indices:
            known = self._seg_known.get(index)
            if known is not None:
                self._seg_consumed.add(id(known))
                all_covers.append(known.cover)
                if known.conc is not None:
                    src = known.as_source()
                    if raw.get(src, -1) < 0:
                        raw[src] = 0
                    # A materialized vector bakes its inputs in, so its
                    # cover can prune them without circularity.
                    conc_covers.append(known.cover)
                else:
                    for src, off in known.parts.items():
                        if off > raw.get(src, -1):
                            raw[src] = off
                if known.const > const:
                    const = known.const
            else:
                src = self._reg_source(lines, index)
                if raw.get(src, -1) < 0:
                    raw[src] = 0
        if cell_expr is not None:
            raw[self._entry_source(lines, cell_expr)] = 0
        if fresh_control:
            # The branch terminator reads the control top after its own
            # truncation, so the segment cache cannot be used.
            raw[
                self._entry_source(
                    lines, "control[-1][2] if control else None"
                )
            ] = 0
        else:
            src = self._ctrl_src(lines)
            if raw.get(src, -1) < 0:
                raw[src] = 0
        parts: dict[_SymSource, int] = {}
        for src, off in raw.items():
            for cov in conc_covers:
                if cov.get(src, -1) >= off:
                    break  # a newer materialized input dominates this one
            else:
                parts[src] = off + cost
        cover: dict[_SymSource, int] = {}
        for cov in all_covers:
            for src, off in cov.items():
                if off + cost > cover.get(src, -1):
                    cover[src] = off + cost
        for src, off in parts.items():
            if off > cover.get(src, -1):
                cover[src] = off
        ts = _SymTS(parts, const + cost, cover)
        self._seg_cost += cost
        self._seg_events.append(ts)
        if result_index is not None:
            self._seg_known[result_index] = ts
            self._pending_sreg[result_index] = ts
        return ts

    def _reg_source(self, lines, index: int) -> _SymSource:
        src = self._src_reg.get(index)
        if src is None:
            src = self._entry_source(lines, self._sreg(index))
            self._src_reg[index] = src
        return src

    def _entry_source(self, lines, expr: str) -> _SymSource:
        """Resolve entry ``expr`` once into numbered locals; the same
        statement-level resolve_entry the shared fragments use (plus
        resolution-cache high-water upkeep, see _gen_region_exit)."""
        self._sym += 1
        n = self._sym
        e, tm, vl = f"_e{n}", f"_tm{n}", f"_vl{n}"
        lines += [
            f"{e} = {expr}",
            f"if {e} is not None:",
            f"    {tm}, _tg = {e}",
            "    if _tg is _cu:",
            f"        {vl} = len({tm})",
            f"        if {vl} > _dp:",
            f"            {vl} = _dp",
            "    else:",
            f"        {vl} = _rcache.get(_tg, -1)",
            f"        if {vl} < 0:",
            f"            {vl} = len(_tg)",
            f"            if len(_cu) < {vl}:",
            f"                {vl} = len(_cu)",
            "            _k = 0",
            f"            while _k < {vl} and _tg[_k] == _cu[_k]:",
            "                _k += 1",
            f"            {vl} = _k",
            f"            _rcache[_tg] = {vl}",
            f"            if {vl} > _rmc[0]:",
            f"                _rmc[0] = {vl}",
            f"        if len({tm}) < {vl}:",
            f"            {vl} = len({tm})",
            f"        if {vl} > _dp:",
            f"            {vl} = _dp",
        ]
        return _SymSource("entry", tm, vl, f"{e} is not None")

    def _ctrl_src(self, lines) -> _SymSource:
        src = self._ctrl_source
        if src is None:
            if self.symbolic:
                self._sym_seg_control(lines)
            else:
                self._seg_control(lines)
            src = _SymSource("ctrl", "_ctm", "_cvl", "_ctm is not None")
            self._ctrl_source = src
        return src

    def _sym_seg_control(self, lines) -> None:
        """Mixin _seg_control plus resolution-cache high-water upkeep."""
        if self._seg_ctrl:
            return
        lines += [
            "_ce = control[-1][2] if control else None",
            "if _ce is None:",
            "    _ctm = None",
            "else:",
            "    _ctm, _ctg = _ce",
            "    if _ctg is _cu:",
            "        _cvl = len(_ctm)",
            "        if _cvl > _dp:",
            "            _cvl = _dp",
            "    else:",
            "        _cvl = _rcache.get(_ctg, -1)",
            "        if _cvl < 0:",
            "            _cvl = len(_ctg)",
            "            if len(_cu) < _cvl:",
            "                _cvl = len(_cu)",
            "            _k = 0",
            "            while _k < _cvl and _ctg[_k] == _cu[_k]:",
            "                _k += 1",
            "            _cvl = _k",
            "            _rcache[_ctg] = _cvl",
            "            if _cvl > _rmc[0]:",
            "                _rmc[0] = _cvl",
            "        if len(_ctm) < _cvl:",
            "            _cvl = len(_ctm)",
            "        if _cvl > _dp:",
            "            _cvl = _dp",
        ]
        self._seg_ctrl = True

    # Resolution-cache maintenance across region boundaries. The mixin
    # clears _rcache on every region event; a region ENTER actually
    # preserves every cached common-prefix length exactly — the appended
    # instance id is freshly allocated, so no cached tag can match it —
    # and an EXIT only invalidates entries whose cached prefix overshoots
    # the popped tag path. _rmc[0] tracks the cache's prefix high-water
    # mark, so loop-level exits (the hot case: every cached prefix stops
    # at or above the loop tag) skip the clear entirely.
    def _gen_region_enter(self, lines, static_id) -> None:
        if not self.symbolic:
            SegmentEmitter._gen_region_enter(self, lines, static_id)
            return
        sub: list[str] = []
        SegmentEmitter._gen_region_enter(self, sub, static_id)
        lines += [line for line in sub if line != "_rcache.clear()"]

    def _gen_region_exit(self, lines, static_id) -> None:
        if not self.symbolic:
            SegmentEmitter._gen_region_exit(self, lines, static_id)
            return
        sub: list[str] = []
        SegmentEmitter._gen_region_exit(self, sub, static_id)
        lines += [line for line in sub if line != "_rcache.clear()"]
        lines += [
            "if _rmc[0] > len(_tg):",
            "    _rcache.clear()",
            "    _rmc[0] = 0",
        ]

    def _materialize(self, lines, ts: _SymTS) -> str:
        if ts.conc is not None:
            return ts.conc
        tv = self._ts_name()
        parts = ts.parts
        # Prefer seeding from a full-depth list source whose own floor
        # already covers the const pad: a listcomp (or an alias) beats
        # the [const]*depth seed plus an elementwise fold loop.
        base = None
        base_floor = -1
        for src, off in parts.items():
            if src.kind == "list" and src.origin is not None:
                floor = src.origin.const + off
                if floor > base_floor:
                    base, base_floor = src, floor
        if base is not None and base_floor >= ts.const:
            off = parts[base]
            rest = [(s, o) for s, o in parts.items() if s is not base]
            if off:
                lines.append(f"{tv} = [_t + {off} for _t in {base.tm}]")
            elif rest:
                lines.append(f"{tv} = {base.tm}[:]")
            else:
                # Alias: timestamp vectors are never mutated once built.
                lines.append(f"{tv} = {base.tm}")
        else:
            # A guarded source whose offset reaches the const floor can
            # still seed its valid prefix at C speed (timestamps are
            # non-negative, so _t + off >= off >= const there) with the
            # const pad covering the tail.
            gbase = None
            for src, off in parts.items():
                if src.kind != "list" and off >= ts.const:
                    gbase = src
                    break
            if gbase is not None:
                off = parts[gbase]
                term = f"_t + {off}" if off else "_t"
                rest = [(s, o) for s, o in parts.items() if s is not gbase]
                lines += [
                    f"if {gbase.guard}:",
                    f"    {tv} = [{term} for _t in {gbase.tm}[:{gbase.vl}]]"
                    f" + [{ts.const}] * (_dp - {gbase.vl})",
                    "else:",
                    f"    {tv} = [{ts.const}] * _dp",
                ]
            else:
                lines.append(f"{tv} = [{ts.const}] * _dp")
                rest = list(parts.items())
        for src, off in rest:
            self._fold_source(lines, src, off, tv, "")
        ts.conc = tv
        return tv

    def _fold_source(self, lines, src, off, target, pad) -> None:
        term = f"_t + {off}" if off else "_t"
        if src.kind == "list":
            lines.append(
                pad + f"{target}[:] = [_c if _c > {term} else {term} "
                f"for _c, _t in zip({target}, {src.tm})]"
            )
            return
        stmt = (
            f"{target}[:{src.vl}] = [_c if _c > {term} else {term} "
            f"for _c, _t in zip({target}, {src.tm}[:{src.vl}])]"
        )
        if src.guard is not None:
            lines.append(pad + f"if {src.guard}:")
            lines.append(pad + _PAD + stmt)
        else:
            lines.append(pad + stmt)

    def _seg_flush(self, lines, keep=None) -> None:
        if not self.symbolic:
            SegmentEmitter._seg_flush(self, lines)
            return
        for index, ts in self._pending_sreg.items():
            if keep is not None and index not in keep:
                continue  # shadow provably dead past this block
            tv = self._materialize(lines, ts)
            lines.append(f"{self._sreg(index)} = ({tv}, _cu)")
        # The region fold is the pointwise max over all event vectors;
        # events consumed by a later event are dominated by it, so only
        # maximal events need folding.
        maximal = [
            ts
            for ts in self._seg_events
            if id(ts) not in self._seg_consumed
        ]
        if self._seg_cost or maximal:
            lines.append("if stack:")
            if self._seg_cost:
                lines.append(f"    stack[-1].work += {self._seg_cost}")
            conc_cover: dict[_SymSource, int] = {}
            conc_const = 0
            folded = set()
            conc_names: list[str] = []
            conc_sources = []
            for ts in maximal:
                if ts.conc is None:
                    continue
                if ts.conc in folded:
                    continue
                folded.add(ts.conc)
                conc_names.append(ts.conc)
                conc_sources.append(ts.as_source())
                for src, off in ts.cover.items():
                    if off > conc_cover.get(src, -1):
                        conc_cover[src] = off
                if ts.const > conc_const:
                    conc_const = ts.const
            if self._vthr and len(conc_names) >= self._vthr:
                # Wide flush: one numpy reduction over the materialized
                # full-depth event vectors (value-exact; scalar form
                # below the threshold).
                lines.append(
                    f"    _vmax(cps, ({', '.join(conc_names)},), _dp)"
                )
            else:
                for src in conc_sources:
                    self._fold_source(lines, src, 0, "cps", _PAD)
            fold_parts: dict[_SymSource, int] = {}
            fold_const = 0
            for ts in maximal:
                if ts.conc is not None:
                    continue
                for src, off in ts.parts.items():
                    if off > fold_parts.get(src, -1):
                        fold_parts[src] = off
                if ts.const > fold_const:
                    fold_const = ts.const
            for src, off in fold_parts.items():
                if conc_cover.get(src, -1) >= off:
                    continue  # already folded through a materialized event
                self._fold_source(lines, src, off, "cps", _PAD)
            if fold_const > conc_const:
                lines.append(
                    f"    cps[:_dp] = [_c if _c > {fold_const} "
                    f"else {fold_const} for _c in cps[:_dp]]"
                )
        self._seg_reset()

    def _skip_instr(self, instr) -> bool:
        return False  # region markers are events here

    def _gen_head(self, frag: list[str], block) -> None:
        super()._gen_head(frag, block)
        if self.info is not None and block in self.info.pops_at:
            # Control-dependence join: entering ends the influence of
            # every branch whose join this block is (on_block_enter).
            join_key = id(block)
            frag += [
                "_j = 0",
                "for _en in control:",
                f"    if _en[1] == {join_key}:",
                "        del control[_j:]",
                "        break",
                "    _j += 1",
            ]

    def _gen_instructions(self, frag: list[str], block) -> None:
        self._seg_reset()
        if self.symbolic:
            # Per-instruction keep sets for mid-block flushes (region ops
            # and user calls): a pending shadow store may be elided there
            # unless its register is read later in this block (including
            # by the flushing instruction itself — calls resolve their
            # argument sregs after the flush) or is live out of it.
            keep = set(self.live_out.get(id(block), frozenset()))
            for op in getattr(block.terminator, "operands", ()):
                if type(op) is Register:
                    keep.add(op.index)
            mid: dict[int, frozenset] = {}
            for instr in reversed(block.instructions):
                for op in getattr(instr, "operands", ()):
                    if type(op) is Register:
                        keep.add(op.index)
                mid[id(instr)] = frozenset(keep)
            self._mid_keep = mid
        super()._gen_instructions(frag, block)

    def _mid_flush(self, frag: list[str], instr) -> None:
        keep = self._mid_keep.get(id(instr)) if self.symbolic else None
        self._seg_flush(frag, keep)

    def _gen_instr(self, frag: list[str], instr, nxt) -> None:
        cls = type(instr)
        if cls is RegionEnter:
            self._mid_flush(frag, instr)
            self._gen_region_enter(frag, instr.region_id)
            return
        if cls is RegionExit:
            self._mid_flush(frag, instr)
            self._gen_region_exit(frag, instr.region_id)
            return
        if cls is Call and not instr.is_builtin:
            self._gen_user_call_fused(frag, instr)
            return
        super()._gen_instr(frag, instr, nxt)

    def _post_compute(self, frag: list[str], instr) -> None:
        # on_compute / on_builtin, fused.
        self._gen_event(
            frag,
            instr.cost,
            instr.shadow_ops,
            result_index=instr.result_index,
        )

    def _gen_load(self, frag: list[str], instr, nxt) -> None:
        res = instr.result.index
        mem = instr.mem
        if type(mem) is GlobalRef and not self.m.is_array_global(mem.name):
            frag.append(f"r{res} = cells[{mem.name!r}]")
            key = _global_key(mem)
            frag.append("_cm = mem_shadow.get(0)")
            cell = f"None if _cm is None else _cm.get({key})"
        elif type(mem) is GlobalRef:
            data = self.m.global_data(mem.name)
            size = self.m.global_size(mem.name)
            span = self.m._name(instr.span, "sp")
            index = self._operand(instr.index)
            frag += [
                f"i = {index}",
                f"if type(i) is int and 0 <= i < {size}:",
                f"    r{res} = {data}[i]",
                "else:",
                f"    r{res} = {data}[_slow_index(i, {size}, {span})]",
            ]
            frag.append(
                f"_cm = mem_shadow.get({self.m.global_sid(mem.name)})"
            )
            cell = "None if _cm is None else _cm[i]"
        else:
            span = self.m._name(instr.span, "sp")
            index = self._operand(instr.index)
            frag += [
                f"st = {self._operand(mem)}",
                "d = st.data",
                f"i = {index}",
                "if type(i) is int and 0 <= i < len(d):",
                f"    r{res} = d[i]",
                "else:",
                f"    r{res} = d[_slow_index(i, len(d), {span})]",
            ]
            frag.append("_cm = mem_shadow.get(id(st))")
            cell = "None if _cm is None else _cm[i]"
        self._gen_event(
            frag,
            instr.cost,
            instr.shadow_ops,
            cell_expr=cell,
            result_index=instr.result_index,
        )

    def _gen_store(self, frag: list[str], instr) -> None:
        mem = instr.mem
        value = self._operand(instr.value)
        if type(mem) is GlobalRef and not self.m.is_array_global(mem.name):
            conv = self.m.scalar_conv(mem.name)
            frag.append(f"cells[{mem.name!r}] = {conv}({value})")
            sid, cell_index, alloc = "0", str(_global_key(mem)), "{}"
        elif type(mem) is GlobalRef:
            data = self.m.global_data(mem.name)
            size = self.m.global_size(mem.name)
            conv = "int" if self.m.global_elem_is_int(mem.name) else "float"
            span = self.m._name(instr.span, "sp")
            index = self._operand(instr.index)
            frag += [
                f"i = {index}",
                f"if not (type(i) is int and 0 <= i < {size}):",
                f"    i = _slow_index(i, {size}, {span})",
                f"{data}[i] = {conv}({value})",
            ]
            sid, cell_index, alloc = (
                self.m.global_sid(mem.name),
                "i",
                f"[None] * {size}",
            )
        else:
            span = self.m._name(instr.span, "sp")
            index = self._operand(instr.index)
            frag += [
                f"st = {self._operand(mem)}",
                "d = st.data",
                f"i = {index}",
                "if not (type(i) is int and 0 <= i < len(d)):",
                f"    i = _slow_index(i, len(d), {span})",
                f"v = {value}",
                "d[i] = int(v) if st.element_is_int else float(v)",
            ]
            sid, cell_index, alloc = "id(st)", "i", "[None] * len(d)"
        tv = self._event_value(frag, instr.cost, instr.shadow_ops)
        frag += [
            f"_cm = mem_shadow.get({sid})",
            "if _cm is None:",
            f"    _cm = {alloc}",
            f"    mem_shadow[{sid}] = _cm",
            f"_cm[{cell_index}] = ({tv}, _cu)",
        ]
        if self._metrics_on:
            frag.append("_mcell[0] += 1")

    # -- terminators -------------------------------------------------------

    def _preterm(self, frag: list[str], block, term) -> None:
        keep = self.live_out.get(id(block)) if self.symbolic else None
        if type(term) is Jump:
            # No event fires for unconditional jumps.
            self._seg_flush(frag, keep)
            return
        # Branch: re-executing (back edge) ends every control region opened
        # after its previous execution — truncate to its old position FIRST
        # (and do not chain the new entry off the old one; see on_branch).
        info = self.m.instrumentation[self.function.name]
        block_key = id(block)
        if self.symbolic and block in info.loop_branch_blocks:
            # Loop-continuation tests never push their own control entry,
            # so the back-edge truncation scan can never match and the
            # control top is unchanged since the segment started: skip the
            # scan, reuse the cached resolution, stay symbolic.
            reg_indices = (
                (term.cond.index,) if type(term.cond) is Register else ()
            )
            self._sym_event(frag, term.cost, reg_indices, None, None, False)
            self._seg_flush(frag, keep)
            return
        frag += [
            "_k = len(control) - 1",
            "while _k >= 0:",
            f"    if control[_k][0] == {block_key}:",
            "        del control[_k:]",
            "        break",
            "    _k -= 1",
        ]
        reg_indices = (
            (term.cond.index,) if type(term.cond) is Register else ()
        )
        tv = self._event_value(
            frag, term.cost, reg_indices, fresh_control=True
        )
        if block not in info.loop_branch_blocks:
            join = info.control.branch_join.get(block)
            join_key = id(join) if join is not None else None
            frag.append(
                f"control.append(({block_key}, {join_key}, ({tv}, _cu)))"
            )
        # else: loop-continuation tests do not enter the control stack
        self._seg_flush(frag, keep)

    def _ret_block_lines(self, term, retired, cost) -> list[str]:
        frag: list[str] = []
        frag.append(f"counts[0] += {retired}")
        frag.append(f"counts[1] += {cost}")
        if self.budget is not None:
            frag.append(f"if counts[0] > {self.budget}:")
            frag.append(
                "    raise InterpreterError('instruction budget exceeded')"
            )
        if term.value is not None:
            frag.append(f"v = {self._operand(term.value)}")
            frag += self._ret_conversion_lines()
        # on_return: the value's availability feeds the caller via
        # prof._pending_return (picked up at the call site).
        reg_indices = (
            (term.value.index,)
            if term.value is not None and type(term.value) is Register
            else ()
        )
        tv = self._event_value(frag, term.cost, reg_indices)
        frag.append(f"prof._pending_return = {tv}")
        # Returning: every pending shadow store is dead past this point.
        self._seg_flush(frag, frozenset() if self.symbolic else None)
        frag.append("return v" if term.value is not None else "return None")
        return frag

    # -- user calls --------------------------------------------------------

    def _gen_user_call_fused(self, frag: list[str], instr) -> None:
        self._mid_flush(frag, instr)
        callee = self.m.module.function(instr.callee)
        cost = instr.cost
        args = [self._operand(arg) for arg in instr.args]
        # on_call: seed the callee's parameter shadows and charge the call
        # overhead itself — same statement order as the fused decoder.
        frag.append("_cur = state[0]")
        frag.append("_tdp = state[1]")
        frag.append(
            "_ctr = _resolve(control[-1][2], _cur) if control else None"
        )
        if self._metrics_on:
            frag.append("_mfr[0] += 1")
        frag.append("_ai = [] if _ctr is None else [_ctr]")
        ps_names: list[str] = []
        for k, arg in enumerate(instr.args[: len(callee.params)]):
            ps = f"_ps{k}"
            ps_names.append(ps)
            if type(arg) is Register:
                frag += [
                    "_pi = [] if _ctr is None else [_ctr]",
                    f"_rs = _resolve({self._sreg(arg.index)}, _cur)",
                    "if _rs is not None:",
                    "    _pi.append(_rs)",
                    "    _ai.append(_rs)",
                    f"{ps} = (_cts(_pi, {cost}, _tdp), _cur)",
                ]
            else:
                frag.append(
                    f"{ps} = (_cts([] if _ctr is None else [_ctr], "
                    f"{cost}, _tdp), _cur)"
                )
        frag.append(f"_ts = _cts(_ai, {cost}, _tdp)")
        frag += [
            "if stack:",
            f"    stack[-1].work += {cost}",
            "    _k = 0",
            "    for _t in _ts:",
            "        if _t > cps[_k]:",
            "            cps[_k] = _t",
            "        _k += 1",
        ]
        value_args = "".join(f"{a}, " for a in args)
        shadow_args = "".join(f"{p}, " for p in ps_names)
        call = f"_mc_{instr.callee}({value_args}{shadow_args}_d + 1)"
        if instr.result is not None:
            frag.append(f"r{instr.result.index} = {call}")
        else:
            frag.append(call)
        # on_call_return: the callee's Ret left its availability here.
        frag.append("_pn = prof._pending_return")
        frag.append("prof._pending_return = None")
        if instr.result is not None:
            frag.append("if _pn is not None:")
            frag.append(
                f"    {self._sreg(instr.result.index)} = (_pn, state[0])"
            )


class _ModuleEmitter:
    """Emits the whole module's generated source (plain flavor)."""

    flavor = "plain"

    def __init__(self, program, budget, force_fallback: bool = False):
        self.program = program
        self.module = program.module
        self.budget = budget
        self.force_fallback = force_fallback
        self.env: dict[str, object] = {}
        self.array_globals: set[str] = set()
        self.fallback_functions: list[str] = []
        self._sym = 0
        self._const_names: dict = {}
        self._builtin_names: dict[str, str] = {}

    # -- environment naming ------------------------------------------------

    def _name(self, value, prefix: str = "k") -> str:
        self._sym += 1
        name = f"_{prefix}{self._sym}"
        self.env[name] = value
        return name

    def const_name(self, value) -> str:
        key = (type(value).__name__, value)
        try:
            name = self._const_names.get(key)
        except TypeError:  # unhashable constant (shouldn't happen)
            return self._name(value, "c")
        if name is None:
            name = self._name(value, "c")
            self._const_names[key] = name
        return name

    def builtin_name(self, callee: str) -> str:
        name = self._builtin_names.get(callee)
        if name is None:
            name = self._name(BUILTINS[callee].impl, "fn")
            self._builtin_names[callee] = name
        return name

    # -- globals -----------------------------------------------------------

    def is_array_global(self, name: str) -> bool:
        return isinstance(self.module.globals[name].type, ArrayType)

    def global_size(self, name: str) -> int:
        return self.module.globals[name].type.element_count

    def global_elem_is_int(self, name: str) -> bool:
        return self.module.globals[name].type.element == INT

    def scalar_conv(self, name: str) -> str:
        return "int" if self.module.globals[name].type == INT else "float"

    def global_obj(self, name: str) -> str:
        self.array_globals.add(name)
        return f"_go_{name}"

    def global_data(self, name: str) -> str:
        self.array_globals.add(name)
        return f"_ga_{name}"

    def global_sid(self, name: str) -> str:
        self.array_globals.add(name)
        return f"_gid_{name}"

    # -- module ------------------------------------------------------------

    def _new_function_emitter(self, function):
        return _FunctionEmitter(self, function)

    def emit_source(self) -> str:
        parts = []
        for name, function in self.module.functions.items():
            emitter = self._new_function_emitter(function)
            parts.append("\n".join(emitter.emit()))
            if emitter.fallback:
                self.fallback_functions.append(name)
        return "\n\n".join(parts) + "\n"


class _FusedModuleEmitter(_ModuleEmitter):
    """Emits the module with fused KremlinProfiler instrumentation."""

    flavor = "fused"

    def __init__(
        self,
        program,
        budget,
        max_depth: int,
        metrics_on: bool,
        force_fallback: bool = False,
        vector_threshold: int = 0,
    ):
        super().__init__(program, budget, force_fallback)
        self.instrumentation = program.instrumentation.functions
        self.max_depth = max_depth
        self.metrics_on = metrics_on
        self.vector_threshold = vector_threshold

    def _new_function_emitter(self, function):
        return _FusedFunctionEmitter(self, function)


class CodegenUnit:
    """One compiled module: source, code object, and binding metadata.

    ``program_env`` holds program-scoped objects the source references by
    generated name (spans, out-of-line constants, builtin impls).
    Instance-scoped names (``cells``, ``interp``, ``counts``,
    ``_go_*``/``_ga_*``/``_gid_*``, profiler state) are bound by
    :class:`repro.interp.runtime.CompiledEngine` before ``exec``.
    """

    __slots__ = (
        "flavor",
        "source",
        "code",
        "program_env",
        "array_globals",
        "fallback_functions",
        "budget",
        "build_seconds",
    )

    def __init__(
        self,
        flavor,
        source,
        code,
        program_env,
        array_globals,
        fallback_functions,
        budget,
        build_seconds,
    ):
        self.flavor = flavor
        self.source = source
        self.code = code
        self.program_env = program_env
        self.array_globals = array_globals
        self.fallback_functions = fallback_functions
        self.budget = budget
        self.build_seconds = build_seconds


def build_unit(
    program,
    flavor: str,
    budget=None,
    max_depth: int | None = None,
    metrics_on: bool = False,
    vector_threshold: int | None = None,
) -> CodegenUnit:
    """Compile ``program`` to a :class:`CodegenUnit` (no caching)."""
    start = time.perf_counter()
    if vector_threshold is None:
        vector_threshold = shadow.vector_threshold()
    last_error: Exception | None = None
    for force in (False, True):
        if flavor == "fused":
            emitter = _FusedModuleEmitter(
                program,
                budget,
                max_depth,
                metrics_on,
                force_fallback=force,
                vector_threshold=vector_threshold,
            )
        elif flavor == "plain":
            emitter = _ModuleEmitter(program, budget, force_fallback=force)
        else:
            raise InterpreterError(f"unknown codegen flavor {flavor!r}")
        source = emitter.emit_source()
        try:
            code = compile(source, f"<kremlin-codegen {flavor}>", "exec")
        except (SyntaxError, RecursionError, MemoryError) as error:
            # Structured output too deep for CPython's compiler: retry the
            # whole module with the dispatch-loop fallback.
            last_error = error
            continue
        return CodegenUnit(
            flavor=flavor,
            source=source,
            code=code,
            program_env=dict(emitter.env),
            array_globals=sorted(emitter.array_globals),
            fallback_functions=list(emitter.fallback_functions),
            budget=budget,
            build_seconds=time.perf_counter() - start,
        )
    raise InterpreterError(f"codegen failed to compile: {last_error}")


def codegen_unit(
    program,
    flavor: str,
    budget=None,
    max_depth: int | None = None,
    metrics_on: bool = False,
) -> CodegenUnit:
    """Cached :func:`build_unit`, keyed on the program object.

    The in-process cache lives on ``program.__dict__``, so a fresh
    ``kremlin_cc`` naturally gets fresh code; callers that mutate a
    program's IR in place after a run must recompile from a new program
    object. In-process misses consult the persistent disk cache
    (:mod:`repro.interp.diskcache`) before building, so warm restarts —
    the service workload — perform zero codegen; freshly built units are
    written back best-effort.
    """
    from repro.interp import diskcache
    from repro.obs.metrics import get_metrics, metrics_enabled

    vthr = shadow.vector_threshold()
    key = (flavor, budget, max_depth, metrics_on, vthr)
    cache = program.__dict__.setdefault("_codegen_units", {})
    unit = cache.get(key)
    if unit is not None:
        if metrics_enabled():
            get_metrics().counter("codegen.unit_cache_hits").cell[0] += 1
        return unit
    unit = diskcache.load_unit(
        program, flavor, budget, max_depth, metrics_on, vthr
    )
    if unit is None:
        unit = build_unit(
            program, flavor, budget, max_depth, metrics_on, vthr
        )
        diskcache.store_unit(
            program, flavor, budget, max_depth, metrics_on, vthr, unit
        )
    cache[key] = unit
    if metrics_enabled():
        get_metrics().counter("codegen.unit_cache_misses").cell[0] += 1
    return unit
