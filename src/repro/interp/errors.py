"""Runtime errors raised by the IR interpreter."""

from __future__ import annotations

from repro.frontend.source import SourceSpan


class InterpreterError(Exception):
    """A runtime fault: out-of-bounds access, division by zero, stack
    overflow, or a malformed module reaching execution."""

    def __init__(self, message: str, span: SourceSpan | None = None):
        super().__init__(message)
        self.message = message
        self.span = span

    def __str__(self) -> str:
        if self.span is None:
            return self.message
        return f"{self.span.filename}:{self.span.start}: {self.message}"
