"""The IR interpreter.

Executes an instrumented module deterministically, firing observer hooks
with every retired instruction so the KremLib runtime (or any other dynamic
analysis) can ride along. Running with ``observer=None`` is the
"uninstrumented binary" — same semantics, no profiling overhead.

Memory model:

* scalars live in virtual registers (per activation frame);
* arrays are flat Python lists wrapped in :class:`ArrayStorage`, passed by
  reference; shadow analyses key memory state by ``(storage id, index)``;
* global scalars live in a module-level cell table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.interp.builtins import BUILTINS, _LcgState
from repro.interp.errors import InterpreterError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Copy,
    Jump,
    Load,
    RegionEnter,
    RegionExit,
    Ret,
    Store,
    UnOp,
)
from repro.ir.types import FLOAT, INT, ArrayType
from repro.ir.values import Constant, GlobalRef, Register, StringConst, Value

if TYPE_CHECKING:
    from repro.instrument.compile import CompiledProgram


class ExecutionObserver:
    """Hook interface for dynamic analyses. All methods are no-ops here.

    The interpreter invokes these *after* an instruction's semantic effect,
    except ``on_call`` (after argument binding, before the callee body) and
    ``on_block_enter`` (before the block's first instruction).
    """

    def on_run_start(self, interpreter: "Interpreter") -> None: ...

    def on_run_end(self, interpreter: "Interpreter") -> None: ...

    def on_compute(self, instr, frame) -> None: ...

    # ``storage`` is the ArrayStorage object for array accesses (its id
    # keys the shadow table and its length sizes array-backed tables) or
    # the int 0 for scalar globals, with ``index`` the interned name key.
    def on_load(self, instr, frame, storage, index: int) -> None: ...

    def on_store(self, instr, frame, storage, index: int) -> None: ...

    def on_builtin(self, instr, frame) -> None: ...

    def on_call(self, instr, caller_frame, callee_frame) -> None: ...

    def on_return(self, ret, frame) -> None: ...

    def on_call_return(self, call_instr, caller_frame) -> None: ...

    def on_branch(self, branch, frame, block: BasicBlock) -> None: ...

    def on_block_enter(self, block: BasicBlock, frame) -> None: ...

    def on_region_enter(self, instr, frame) -> None: ...

    def on_region_exit(self, instr, frame) -> None: ...


class ArrayStorage:
    """Flat array storage; identity is its id for shadow keying."""

    __slots__ = ("data", "element_is_int")

    def __init__(self, count: int, element_is_int: bool):
        self.data = [0] * count if element_is_int else [0.0] * count
        self.element_is_int = element_is_int

    def __len__(self) -> int:
        return len(self.data)


class Frame:
    """One activation: register file plus an analysis-attachable slot."""

    __slots__ = ("function", "registers", "frame_id", "shadow")

    def __init__(self, function: Function, frame_id: int):
        self.function = function
        self.registers: list = [None] * function.num_registers
        self.frame_id = frame_id
        self.shadow = None  # owned by the observer


@dataclass
class RunResult:
    """Outcome of one program execution."""

    value: int | float | None
    output: list[str] = field(default_factory=list)
    instructions_retired: int = 0
    total_cost: int = 0

    @property
    def output_text(self) -> str:
        return "\n".join(self.output)


# Each MiniC call adds a few Python frames; stay well inside Python's own
# recursion limit so the guard fires first with a clear message.
_MAX_CALL_DEPTH = 400


class Interpreter:
    """Executes a :class:`CompiledProgram`.

    Two execution engines share this class:

    * ``engine="bytecode"`` — the predecoded closure-dispatch
      engine from :mod:`repro.interp.bytecode`. Supports ``observer=None``
      (plain stream) and :class:`~repro.kremlib.profiler.KremlinProfiler`
      (fused instrumented stream). Any other observer silently falls back
      to the tree engine, which fires the full generic hook protocol.
    * ``engine="tree"`` — the original tree-walking reference
      implementation below, kept for differential testing.
    """

    def __init__(
        self,
        program: "CompiledProgram",
        observer: ExecutionObserver | None = None,
        max_instructions: int | None = None,
        engine: str = "compiled",
    ):
        self.program = program
        self.module = program.module
        self.observer = observer
        self.max_instructions = max_instructions

        if engine not in ("bytecode", "tree", "compiled"):
            raise InterpreterError(
                f"unknown engine {engine!r} "
                "(expected 'tree', 'bytecode', or 'compiled')"
            )
        if (
            engine in ("bytecode", "compiled")
            and observer is not None
            and not getattr(observer, "supports_fused_decode", False)
        ):
            # Generic observers need the per-instruction hook protocol only
            # the tree engine fires.
            engine = "tree"
        self.engine = engine
        self._bytecode = None
        self._compiled = None

        self.globals_scalar: dict[str, int | float] = {}
        self.globals_array: dict[str, ArrayStorage] = {}
        self.output: list[str] = []
        self.rng = _LcgState()
        self.instructions_retired = 0
        self.total_cost = 0
        self._next_frame_id = 0

        self._init_globals()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _init_globals(self) -> None:
        for var in self.module.globals.values():
            if isinstance(var.type, ArrayType):
                count = var.type.element_count
                assert count is not None
                self.globals_array[var.name] = ArrayStorage(
                    count, var.type.element == INT
                )
            else:
                default: int | float = 0 if var.type == INT else 0.0
                if var.init is not None:
                    default = var.init
                self.globals_scalar[var.name] = default

    def _new_frame(self, function: Function) -> Frame:
        frame = Frame(function, self._next_frame_id)
        self._next_frame_id += 1
        return frame

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------

    def _value(self, operand: Value, frame: Frame):
        if type(operand) is Register:
            return frame.registers[operand.index]
        if type(operand) is Constant:
            return operand.value
        if type(operand) is GlobalRef:
            # Array globals are passed by reference.
            storage = self.globals_array.get(operand.name)
            if storage is not None:
                return storage
            return self.globals_scalar[operand.name]
        if type(operand) is StringConst:
            return operand.value
        raise InterpreterError(f"cannot evaluate operand {operand!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Eagerly decode/compile the selected engine's code.

        Normally decode and codegen are lazy (first ``run()``); sessions
        that want codegen cost up front — e.g. to cache compiled units
        before timing runs — call this explicitly. No-op for the tree
        engine.
        """
        if self.engine == "compiled":
            from repro.interp.runtime import CompiledEngine

            if self._compiled is None:
                self._compiled = CompiledEngine(self)
            self._compiled.prepare()
        elif self.engine == "bytecode":
            from repro.interp.bytecode import BytecodeEngine

            if self._bytecode is None:
                self._bytecode = BytecodeEngine(self)
            if not self._bytecode._decoded:
                self._bytecode._decode()

    def run(self, entry: str = "main", args: tuple = ()) -> RunResult:
        if self.engine == "compiled":
            from repro.interp.runtime import CompiledEngine

            if self._compiled is None:
                self._compiled = CompiledEngine(self)
            return self._compiled.run(entry, args)
        if self.engine == "bytecode":
            from repro.interp.bytecode import BytecodeEngine

            if self._bytecode is None:
                self._bytecode = BytecodeEngine(self)
            return self._bytecode.run(entry, args)
        observer = self.observer
        if observer is not None:
            observer.on_run_start(self)
        function = self.module.function(entry)
        frame = self._new_frame(function)
        if len(args) != len(function.params):
            raise InterpreterError(
                f"{entry}() expects {len(function.params)} arguments, got {len(args)}"
            )
        for param, arg in zip(function.params, args):
            frame.registers[param.index] = arg
        value = self._run_function(frame, depth=0)
        if observer is not None:
            observer.on_run_end(self)
        return RunResult(
            value=value,
            output=list(self.output),
            instructions_retired=self.instructions_retired,
            total_cost=self.total_cost,
        )

    def _run_function(self, frame: Frame, depth: int):
        if depth > _MAX_CALL_DEPTH:
            raise InterpreterError("call stack exhausted (runaway recursion?)")
        observer = self.observer
        block = frame.function.entry
        registers = frame.registers
        retired = 0
        cost_total = 0

        while True:
            if observer is not None:
                observer.on_block_enter(block, frame)
            for instr in block.instructions:
                retired += 1
                cost_total += instr.cost
                cls = type(instr)
                if cls is BinOp:
                    lhs = instr.lhs
                    rhs = instr.rhs
                    a = (
                        registers[lhs.index]
                        if type(lhs) is Register
                        else self._value(lhs, frame)
                    )
                    b = (
                        registers[rhs.index]
                        if type(rhs) is Register
                        else self._value(rhs, frame)
                    )
                    registers[instr.result.index] = _apply_binop(
                        instr.op, a, b, instr.span
                    )
                    if observer is not None:
                        observer.on_compute(instr, frame)
                elif cls is Load:
                    mem = self._value(instr.mem, frame)
                    if type(mem) is ArrayStorage:
                        index = self._value(instr.index, frame)
                        try:
                            registers[instr.result.index] = mem.data[_check_index(index, len(mem.data), instr)]
                        except IndexError:
                            raise InterpreterError(
                                f"array index {index} out of bounds "
                                f"(size {len(mem.data)})",
                                instr.span,
                            ) from None
                        if observer is not None:
                            observer.on_load(instr, frame, mem, index)
                    else:
                        registers[instr.result.index] = mem  # global scalar
                        if observer is not None:
                            observer.on_load(instr, frame, 0, _global_key(instr.mem))
                elif cls is Store:
                    mem = self._value(instr.mem, frame)
                    value = self._value(instr.value, frame)
                    if type(mem) is ArrayStorage:
                        index = self._value(instr.index, frame)
                        data = mem.data
                        checked = _check_index(index, len(data), instr)
                        if mem.element_is_int:
                            data[checked] = int(value)
                        else:
                            data[checked] = float(value)
                        if observer is not None:
                            observer.on_store(instr, frame, mem, index)
                    else:
                        name = instr.mem.name  # type: ignore[union-attr]
                        var = self.module.globals[name]
                        self.globals_scalar[name] = (
                            int(value) if var.type == INT else float(value)
                        )
                        if observer is not None:
                            observer.on_store(instr, frame, 0, _global_key(instr.mem))
                elif cls is Copy:
                    registers[instr.result.index] = self._value(instr.operand, frame)
                    if observer is not None:
                        observer.on_compute(instr, frame)
                elif cls is Cast:
                    value = self._value(instr.operand, frame)
                    registers[instr.result.index] = (
                        int(value) if instr.target == INT else float(value)
                    )
                    if observer is not None:
                        observer.on_compute(instr, frame)
                elif cls is UnOp:
                    value = self._value(instr.operand, frame)
                    if instr.op == "-":
                        registers[instr.result.index] = -value
                    else:  # '!'
                        registers[instr.result.index] = 0 if value else 1
                    if observer is not None:
                        observer.on_compute(instr, frame)
                elif cls is Call:
                    if instr.is_builtin:
                        self._exec_builtin(instr, frame)
                        if observer is not None:
                            observer.on_builtin(instr, frame)
                    else:
                        callee = self.module.function(instr.callee)
                        callee_frame = self._new_frame(callee)
                        callee_registers = callee_frame.registers
                        for param, arg in zip(callee.params, instr.args):
                            callee_registers[param.index] = self._value(arg, frame)
                        if observer is not None:
                            observer.on_call(instr, frame, callee_frame)
                        result = self._run_function(callee_frame, depth + 1)
                        if instr.result is not None:
                            registers[instr.result.index] = result
                        if observer is not None:
                            observer.on_call_return(instr, frame)
                elif cls is RegionEnter:
                    if observer is not None:
                        observer.on_region_enter(instr, frame)
                elif cls is RegionExit:
                    if observer is not None:
                        observer.on_region_exit(instr, frame)
                elif cls is Alloca:
                    count = instr.array_type.element_count
                    assert count is not None
                    registers[instr.result.index] = ArrayStorage(
                        count, instr.array_type.element == INT
                    )
                    if observer is not None:
                        observer.on_compute(instr, frame)
                else:
                    raise InterpreterError(
                        f"unknown instruction {type(instr).__name__}", instr.span
                    )

            terminator = block.terminator
            retired += 1
            cost_total += terminator.cost
            cls = type(terminator)
            if cls is Jump:
                block = terminator.target
            elif cls is Branch:
                cond = self._value(terminator.cond, frame)
                if self.observer is not None:
                    self.observer.on_branch(terminator, frame, block)
                block = terminator.then_block if cond != 0 else terminator.else_block
            elif cls is Ret:
                self.instructions_retired += retired
                self.total_cost += cost_total
                if self.max_instructions is not None and (
                    self.instructions_retired > self.max_instructions
                ):
                    raise InterpreterError("instruction budget exceeded")
                value = (
                    self._value(terminator.value, frame)
                    if terminator.value is not None
                    else None
                )
                if value is not None:
                    return_type = frame.function.return_type
                    value = int(value) if return_type == INT else (
                        float(value) if return_type == FLOAT else value
                    )
                if observer is not None:
                    observer.on_return(terminator, frame)
                return value
            else:
                raise InterpreterError(
                    f"unknown terminator {type(terminator).__name__}",
                    terminator.span,
                )

            if self.max_instructions is not None:
                # Only check at block boundaries: cheap and sufficient.
                if self.instructions_retired + retired > self.max_instructions:
                    raise InterpreterError("instruction budget exceeded")

    def _exec_builtin(self, instr: Call, frame: Frame) -> None:
        spec = BUILTINS[instr.callee]
        values = [self._value(arg, frame) for arg in instr.args]
        result = spec.impl(self, *values)
        if instr.result is not None:
            if spec.returns == "int":
                result = int(result)
            elif spec.returns == "float":
                result = float(result)
            frame.registers[instr.result.index] = result


def _check_index(index, size: int, instr) -> int:
    if not isinstance(index, int):
        raise InterpreterError(f"non-integer array index {index!r}", instr.span)
    if index < 0 or index >= size:
        raise InterpreterError(
            f"array index {index} out of bounds (size {size})", instr.span
        )
    return index


_GLOBAL_KEYS: dict[str, int] = {}


def _global_key(ref) -> int:
    """Stable small-int key for a global scalar cell (shadow addressing)."""
    key = _GLOBAL_KEYS.get(ref.name)
    if key is None:
        key = len(_GLOBAL_KEYS)
        _GLOBAL_KEYS[ref.name] = key
    return key


def _apply_binop(op: str, a, b, span):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise InterpreterError("division by zero", span)
        if isinstance(a, int) and isinstance(b, int):
            # C semantics: truncate toward zero.
            q = abs(a) // abs(b)
            return -q if (a < 0) != (b < 0) else q
        return a / b
    if op == "%":
        if b == 0:
            raise InterpreterError("modulo by zero", span)
        q = abs(a) // abs(b)
        q = -q if (a < 0) != (b < 0) else q
        return a - q * b
    if op == "<":
        return 1 if a < b else 0
    if op == "<=":
        return 1 if a <= b else 0
    if op == ">":
        return 1 if a > b else 0
    if op == ">=":
        return 1 if a >= b else 0
    if op == "==":
        return 1 if a == b else 0
    if op == "!=":
        return 1 if a != b else 0
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return a << b
    if op == ">>":
        return a >> b
    if op == "&&":
        return 1 if (a != 0 and b != 0) else 0
    if op == "||":
        return 1 if (a != 0 or b != 0) else 0
    raise InterpreterError(f"unknown binary operator {op!r}", span)
