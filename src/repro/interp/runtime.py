"""Runtime support for the AOT compiled engine.

:class:`CompiledEngine` owns one interpreter instance's bindings of the
cached :class:`~repro.interp.codegen.CodegenUnit`: it builds the exec
environment (instance-scoped names like ``cells``/``interp``/``counts``
and the ``_go_*``/``_ga_*``/``_gid_*`` global-array bindings; profiler
state mirrors for the fused flavor), executes the unit's code object to
materialize the generated functions, and drives entry-point calls with
the same run lifecycle the bytecode engine uses.

Code objects are compiled once per program (cached on the program by
:func:`~repro.interp.codegen.codegen_unit`); per-interpreter preparation
is just a dict build plus ``exec`` of precompiled code.
"""

from __future__ import annotations

import time

from repro.interp.bytecode import _slow_index
from repro.interp.codegen import codegen_unit
from repro.interp.errors import InterpreterError
from repro.interp.interpreter import ArrayStorage, RunResult


class CompiledEngine:
    """Executes the AOT-compiled functions for one Interpreter."""

    def __init__(self, interp):
        self.interp = interp
        # Shared mutable [instructions_retired, total_cost]; generated code
        # flushes into it at returns (plain) or block boundaries (fused).
        self.counts = [interp.instructions_retired, interp.total_cost]
        self._fns: dict | None = None
        self._env: dict | None = None
        self.unit = None
        #: wall-clock seconds spent in prepare() (codegen + env binding);
        #: near-zero on unit-cache hits. The bench harness records it.
        self.codegen_seconds = 0.0
        # Fused-flavor profiler mirrors (same roles as FusedDecoder's).
        self._state: list | None = None
        self._cps: list | None = None
        self._rcache: dict | None = None
        # High-water mark of cached resolution prefixes: region exits only
        # clear _rcache when the popped tag is shorter than this (a cached
        # prefix could otherwise overshoot the live region path).
        self._rmc: list = [0]
        self._frames_cell = None

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Bind the cached codegen unit to this interpreter (idempotent)."""
        if self._fns is not None:
            return
        start = time.perf_counter()
        interp = self.interp
        observer = interp.observer
        env: dict = {
            "counts": self.counts,
            "cells": interp.globals_scalar,
            "interp": interp,
            "InterpreterError": InterpreterError,
            "ArrayStorage": ArrayStorage,
            "_slow_index": _slow_index,
            # Pin hot builtins into module scope: LOAD_GLOBAL hits beat
            # the globals-then-builtins miss chain.
            "int": int,
            "float": float,
            "type": type,
            "len": len,
            "abs": abs,
            "isinstance": isinstance,
            "max": max,
            "zip": zip,
            "id": id,
            "tuple": tuple,
            "sorted": sorted,
        }
        if observer is None:
            unit = codegen_unit(
                interp.program, "plain", interp.max_instructions
            )
        else:
            # The Interpreter only routes KremlinProfiler observers here.
            from repro.kremlib.fastpath import _compute_ts
            from repro.kremlib.profiler import ProfilerError, _ActiveRegion
            from repro.kremlib.shadow import (
                fold_max_into,
                merged_event,
                resolve_entry,
            )
            from repro.obs.metrics import get_metrics, metrics_enabled

            metrics_on = metrics_enabled()
            unit = codegen_unit(
                interp.program,
                "fused",
                interp.max_instructions,
                observer.max_depth,
                metrics_on,
            )
            self._state = [observer.tags, observer.tracked_depth]
            self._cps = []
            self._rcache = {}
            env.update(
                {
                    "state": self._state,
                    "cps": self._cps,
                    "_rcache": self._rcache,
                    "_rmc": self._rmc,
                    "stack": observer.stack,
                    "mem_shadow": observer.mem_shadow,
                    "prof": observer,
                    "_ActiveRegion": _ActiveRegion,
                    "ProfilerError": ProfilerError,
                    "_intern": observer.dictionary.intern,
                    "_resolve": resolve_entry,
                    "_cts": _compute_ts,
                    "_vmax": fold_max_into,
                    "_vts": merged_event,
                }
            )
            if metrics_on:
                registry = get_metrics()
                self._frames_cell = registry.counter("shadow.frames").cell
                env.update(
                    {
                        "_mfp": registry.counter("fastpath.known_hits").cell,
                        "_mres": registry.counter(
                            "fastpath.entry_resolutions"
                        ).cell,
                        "_mev": registry.counter(
                            "shadow.stale_evictions"
                        ).cell,
                        "_mcell": registry.counter(
                            "shadow.cell_writes"
                        ).cell,
                        "_mfr": self._frames_cell,
                    }
                )
        env.update(unit.program_env)
        for name in unit.array_globals:
            storage = interp.globals_array[name]
            env[f"_go_{name}"] = storage
            env[f"_ga_{name}"] = storage.data
            env[f"_gid_{name}"] = id(storage)
        exec(unit.code, env)  # noqa: S102 - our own generated module
        self.unit = unit
        self._env = env
        self._fns = {
            name: env[f"_mc_{name}"]
            for name in interp.module.functions
        }
        self.codegen_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, entry: str, args: tuple) -> RunResult:
        interp = self.interp
        observer = interp.observer
        self.prepare()
        counts = self.counts
        counts[0] = interp.instructions_retired
        counts[1] = interp.total_cost
        if observer is not None:
            observer.on_run_start(interp)
            # Sync mirrors after the profiler reset its source state.
            state = self._state
            state[0] = observer.tags
            state[1] = observer.tracked_depth
            del self._cps[:]
            self._rcache.clear()
            self._rmc[0] = 0
            if self._frames_cell is not None:
                self._frames_cell[0] += 1
        function = interp.module.function(entry)
        fn = self._fns[entry]
        if len(args) != len(function.params):
            raise InterpreterError(
                f"{entry}() expects {len(function.params)} arguments, "
                f"got {len(args)}"
            )
        if observer is None:
            value = fn(*args, 0)
        else:
            # Entry-point shadow parameters start unwritten, exactly like
            # the bytecode engine's fresh sregs list.
            value = fn(*args, *([None] * len(function.params)), 0)
        interp.instructions_retired = counts[0]
        interp.total_cost = counts[1]
        if observer is not None:
            observer.on_run_end(interp)
        return RunResult(
            value=value,
            output=list(interp.output),
            instructions_retired=interp.instructions_retired,
            total_cost=interp.total_cost,
        )
