"""Builtin (libc-flavoured) functions available to MiniC programs.

All builtins are deterministic; ``srand``/``rand``/``randf`` use a fixed
linear congruential generator held in the interpreter so profiled runs are
reproducible bit-for-bit. Costs are latencies in the machine cost model; see
:mod:`repro.instrument.costs` for the rest of the table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

# Parameter/return type tags. 'num' accepts int or float and 'same' returns
# the promoted operand type; 'str' accepts only string literals (print).
ParamTag = str


@dataclass(frozen=True)
class BuiltinSpec:
    name: str
    params: tuple[ParamTag, ...]
    returns: str  # 'int' | 'float' | 'void' | 'same'
    cost: int
    impl: Callable
    variadic: bool = False  # extra 'num'/'str' args allowed (print)


class _LcgState:
    """Deterministic rand(): glibc-style LCG, fixed seed unless srand'd."""

    def __init__(self, seed: int = 12345):
        self.state = seed & 0x7FFFFFFF

    def next_int(self) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state

    def seed(self, value: int) -> None:
        self.state = value & 0x7FFFFFFF


def _impl_print(runtime, *args):
    pieces = []
    for arg in args:
        if isinstance(arg, float):
            pieces.append(f"{arg:.6g}")
        else:
            pieces.append(str(arg))
    runtime.output.append(" ".join(pieces))
    return None


def _wrap_math(fn: Callable[[float], float]) -> Callable:
    def impl(_runtime, x):
        return fn(float(x))

    return impl


def _impl_pow(_runtime, base, exponent):
    return math.pow(float(base), float(exponent))


def _impl_abs(_runtime, x):
    return abs(x)


def _impl_min(_runtime, a, b):
    return a if a < b else b


def _impl_max(_runtime, a, b):
    return a if a > b else b


def _impl_srand(runtime, seed):
    runtime.rng.seed(int(seed))
    return None


def _impl_rand(runtime):
    return runtime.rng.next_int()


def _impl_randf(runtime):
    return runtime.rng.next_int() / 2147483648.0


def _impl_kremlin_fork(runtime):
    """Chunk-dispatch rendezvous emitted by the parallel-loop transform.

    A :class:`~repro.parallel.executor.ParallelExecutor` installs a policy
    object on the interpreter (``_parallel_policy``) whose ``fork`` method
    partitions the counted trip and dispatches worker chunks. Without a
    policy — a transformed program run like any other program, or a
    rewritten site reached *inside* a worker chunk — fork degrades to
    serial semantics: the masked master loop claims every iteration.
    """
    policy = getattr(runtime, "_parallel_policy", None)
    if policy is not None:
        policy.fork(runtime)
        return None
    cells = runtime.globals_scalar
    cells["__kremlin_lo"] = 0
    cells["__kremlin_hi"] = int(cells.get("__kremlin_trip", 0))
    return None


def _impl_kremlin_join(runtime):
    """Merge rendezvous paired with ``__kremlin_fork`` (no-op when serial)."""
    policy = getattr(runtime, "_parallel_policy", None)
    if policy is not None:
        policy.join(runtime)
    return None


_MATH_COST = 20
_TRANSCENDENTAL_COST = 30

BUILTINS: dict[str, BuiltinSpec] = {
    spec.name: spec
    for spec in [
        BuiltinSpec("sqrt", ("num",), "float", _MATH_COST, _wrap_math(math.sqrt)),
        BuiltinSpec("fabs", ("num",), "float", 2, _wrap_math(abs)),
        BuiltinSpec("exp", ("num",), "float", _TRANSCENDENTAL_COST, _wrap_math(math.exp)),
        BuiltinSpec("log", ("num",), "float", _TRANSCENDENTAL_COST, _wrap_math(math.log)),
        BuiltinSpec("sin", ("num",), "float", _TRANSCENDENTAL_COST, _wrap_math(math.sin)),
        BuiltinSpec("cos", ("num",), "float", _TRANSCENDENTAL_COST, _wrap_math(math.cos)),
        BuiltinSpec("floor", ("num",), "float", 2, _wrap_math(math.floor)),
        BuiltinSpec("ceil", ("num",), "float", 2, _wrap_math(math.ceil)),
        BuiltinSpec("pow", ("num", "num"), "float", _TRANSCENDENTAL_COST, _impl_pow),
        BuiltinSpec("abs", ("num",), "same", 1, _impl_abs),
        BuiltinSpec("min", ("num", "num"), "same", 1, _impl_min),
        BuiltinSpec("max", ("num", "num"), "same", 1, _impl_max),
        BuiltinSpec("srand", ("num",), "void", 5, _impl_srand),
        BuiltinSpec("rand", (), "int", 10, _impl_rand),
        BuiltinSpec("randf", (), "float", 12, _impl_randf),
        BuiltinSpec("print", (), "void", 1, _impl_print, variadic=True),
        # Parallel-loop rendezvous points (emitted only by the
        # repro.parallel transform, never written by hand; see
        # docs/PARALLEL.md). Serial cost 1: the transformed program's
        # profile is not compared against the original's.
        BuiltinSpec("__kremlin_fork", (), "void", 1, _impl_kremlin_fork),
        BuiltinSpec("__kremlin_join", (), "void", 1, _impl_kremlin_join),
    ]
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS
