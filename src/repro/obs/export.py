"""Trace and metric exporters.

Three formats over the same :class:`~repro.obs.trace.Tracer`:

* :func:`render_tree` — indented human-readable tree with durations and
  per-span percentages of the root, for terminals;
* :func:`spans_to_jsonl` — one JSON object per span per line, for ad-hoc
  ``jq``-style analysis;
* :func:`chrome_trace` — the Chrome ``trace_event`` JSON object format
  (``{"traceEvents": [...]}``) with complete (``"ph": "X"``) events,
  loadable directly in ``about:tracing`` or https://ui.perfetto.dev.
  Metric counters ride along as ``"ph": "C"`` counter events plus a
  summary metadata event, so one file carries the whole story.

:func:`validate_chrome_trace` is the schema checker the tests and the CI
smoke script share; it returns a list of problems (empty = valid).
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

#: trace_event timestamps are in microseconds
_US = 1e6


def _span_dict(span: Span) -> dict:
    return {
        "name": span.name,
        "index": span.index,
        "parent": span.parent,
        "depth": span.depth,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "args": span.args,
    }


def spans_to_jsonl(tracer: Tracer) -> str:
    """One JSON object per finished span per line, in start order."""
    lines = [
        json.dumps(_span_dict(span), sort_keys=True)
        for span in tracer.finished_spans()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_tree(tracer: Tracer) -> str:
    """Human-readable span tree with durations and %-of-root."""
    spans = tracer.finished_spans()
    if not spans:
        return "(no spans recorded)"
    roots = [span for span in spans if span.parent is None]
    total = sum(span.duration for span in roots) or 1.0
    lines = []
    for span in spans:
        pct = 100.0 * span.duration / total
        label = f"{'  ' * span.depth}{span.name}"
        suffix = ""
        if span.args:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(span.args.items()))
            suffix = f"  [{pairs}]"
        lines.append(
            f"{label:<32} {_format_seconds(span.duration):>10} "
            f"{pct:5.1f}%{suffix}"
        )
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry) -> str:
    """Human-readable metric table, sorted by name."""
    snapshot = registry.to_dict()
    lines = []
    for name, value in snapshot["counters"].items():
        lines.append(f"{name:<40} {value:>16,}")
    for name, value in snapshot["gauges"].items():
        lines.append(f"{name:<40} {value:>16,.3f}")
    for name, stats in snapshot["histograms"].items():
        lines.append(
            f"{name:<40} count={stats['count']} mean={stats['mean']:.4g} "
            f"min={stats['min']} max={stats['max']}"
        )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def chrome_trace(
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
    process_name: str = "kremlin",
) -> dict:
    """Encode a trace (and optional metrics) as a trace_event document."""
    pid = os.getpid()
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    last_ts = 0.0
    for span in tracer.finished_spans():
        ts = span.start * _US
        dur = span.duration * _US
        last_ts = max(last_ts, ts + dur)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "pipeline",
                "ts": ts,
                "dur": dur,
                "pid": pid,
                "tid": 0,
                "args": dict(span.args),
            }
        )
    if metrics is not None:
        snapshot = metrics.to_dict()
        for name, value in snapshot["counters"].items():
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "cat": "metrics",
                    "ts": last_ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
        events.append(
            {
                "ph": "M",
                "name": "kremlin_metrics",
                "pid": pid,
                "tid": 0,
                "args": snapshot,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "format": "trace_event"},
    }


#: phases we emit; the validator accepts exactly these
_KNOWN_PHASES = {"X", "C", "M"}


def validate_chrome_trace(document) -> list[str]:
    """Validate a trace_event document; returns problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing integer tid")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args is not an object")
        if phase in ("X", "C"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter event without args")
    try:
        json.dumps(document)
    except (TypeError, ValueError) as error:
        problems.append(f"document is not JSON-serializable: {error}")
    return problems
