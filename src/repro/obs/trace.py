"""Structured tracing: nested spans over the pipeline stages.

A :class:`Tracer` records :class:`Span` objects — name, start/end time,
parent link, nesting depth, and free-form ``args``. Spans are identified
by **start order** (``span.index``), which is deterministic for a
deterministic pipeline; completed spans are stored in start order too, so
every exporter's output is reproducible under a fake clock.

The disabled path is :data:`NULL_TRACER`, a singleton whose ``span()``
returns one cached no-op context manager: instrumented call sites pay a
method call and a ``with`` block per *stage* (roughly ten per analyzed
program), never per instruction.
"""

from __future__ import annotations

import time


class Span:
    """One timed, named interval; a node in the trace tree."""

    __slots__ = ("name", "index", "parent", "depth", "start", "end", "args")

    def __init__(
        self, name: str, index: int, parent: int | None, depth: int, start: float
    ):
        self.name = name
        #: start-order id; stable across runs of a deterministic pipeline
        self.index = index
        #: ``index`` of the enclosing span, or None for a root
        self.parent = parent
        self.depth = depth
        self.start = start
        self.end: float | None = None
        self.args: dict = {}

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, index={self.index}, depth={self.depth}, "
            f"start={self.start}, end={self.end})"
        )


class FakeClock:
    """Deterministic clock for tests: each call advances by ``step``."""

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class _SpanContext:
    """Context manager yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span, exc)


class Tracer:
    """Records nested spans; one per traced pipeline run (or global)."""

    enabled = True

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else time.perf_counter
        #: completed AND open spans, in start order
        self.spans: list[Span] = []
        self._open: list[Span] = []

    def span(self, name: str, **args) -> _SpanContext:
        """Open a span; use as ``with tracer.span("parse"): ...``."""
        parent = self._open[-1] if self._open else None
        span = Span(
            name,
            index=len(self.spans),
            parent=parent.index if parent is not None else None,
            depth=len(self._open),
            start=self.clock(),
        )
        if args:
            span.args.update(args)
        self.spans.append(span)
        self._open.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span, exc) -> None:
        span.end = self.clock()
        if exc is not None:
            span.args["error"] = f"{type(exc).__name__}: {exc}"
        # Spans close strictly LIFO under ``with``; tolerate being closed
        # out of order anyway (an exporter run mid-trace must not wedge).
        if self._open and self._open[-1] is span:
            self._open.pop()
        elif span in self._open:  # pragma: no cover - defensive
            self._open.remove(span)

    def annotate(self, **args) -> None:
        """Attach args to the innermost open span (no-op when none)."""
        if self._open:
            self._open[-1].args.update(args)

    def record_span(self, name: str, start: float, end: float, **args) -> Span:
        """Append an already-completed span with explicit timestamps.

        For intervals measured outside the ``with`` discipline — e.g. a
        pool worker's chunk, timed in the worker and reported to the
        master after the fact. The span parents under the innermost open
        span, so chunk spans nest inside ``parallel.run`` in exporters.
        """
        parent = self._open[-1] if self._open else None
        span = Span(
            name,
            index=len(self.spans),
            parent=parent.index if parent is not None else None,
            depth=len(self._open),
            start=start,
        )
        span.end = end
        if args:
            span.args.update(args)
        self.spans.append(span)
        return span

    def finished_spans(self) -> list[Span]:
        """Spans with an end time, in start order."""
        return [span for span in self.spans if span.end is not None]


class _NullSpanContext:
    """Shared no-op context manager; returns the shared null span."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullSpan:
    """Inert span handed out by the null tracer; swallows annotations."""

    __slots__ = ()
    name = "<null>"
    index = -1
    parent = None
    depth = 0
    start = 0.0
    end = 0.0
    duration = 0.0

    @property
    def args(self) -> dict:
        return {}  # fresh throwaway; writes vanish by design


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every operation is a cached no-op."""

    enabled = False
    spans: list = []

    def span(self, name: str, **args) -> _NullSpanContext:
        return _NULL_CONTEXT

    def annotate(self, **args) -> None:
        return None

    def record_span(self, name: str, start: float, end: float, **args):
        return _NULL_SPAN

    def finished_spans(self) -> list:
        return []


NULL_TRACER = NullTracer()
_current: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide tracer (the null tracer unless one is installed)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` globally (None restores the null tracer).

    Returns the previously installed tracer so callers can restore it.
    """
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


class tracing:
    """Context manager: install a tracer for a scope, restore on exit.

    ::

        with tracing() as tracer:
            report = session.analyze(source)
        print(render_tree(tracer))

    Accepts an existing tracer or a ``clock`` for a fresh one.
    """

    def __init__(self, tracer: Tracer | None = None, clock=None):
        self.tracer = tracer if tracer is not None else Tracer(clock=clock)
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)
