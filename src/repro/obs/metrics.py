"""Metric registry: counters, gauges, and histograms for the hot paths.

Producers never format or export anything; they bump plain Python ints.
Two access patterns keep the hot paths honest:

* **Guarded call sites** — ordinary code checks :func:`metrics_enabled`
  once per coarse event (a run, a frame, a serialization) and then calls
  ``registry.counter(name).inc(n)``.
* **Boxed cells for generated code** — the fused bytecode decoder bakes
  ``cell[0] += k`` statements into its generated closures, where ``cell``
  is :attr:`Counter.cell`, a one-element list shared with the registry.
  The decoder only emits those statements when metrics are enabled *at
  decode time*, so a disabled run executes source identical to an
  uninstrumented build — zero overhead by construction.

Metric names are dotted strings (``fastpath.known_hits``,
``shadow.stale_evictions``, ``compress.dict_hits``); the taxonomy is
documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations


class Counter:
    """Monotonic counter. ``cell`` is the boxed int for generated code."""

    __slots__ = ("name", "cell")

    def __init__(self, name: str):
        self.name = name
        self.cell: list = [0]

    @property
    def value(self) -> int:
        return self.cell[0]

    def inc(self, amount: int = 1) -> None:
        self.cell[0] += amount

    def reset(self) -> None:
        self.cell[0] = 0


class Gauge:
    """Last-write-wins scalar (ratios, utilizations, throughputs)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Summary statistics over recorded observations (no buckets needed)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name → metric map; creation is idempotent, iteration is sorted."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def to_dict(self) -> dict:
        """JSON-serializable snapshot with sorted, stable key order."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def reset(self) -> None:
        for metric in self._counters.values():
            metric.reset()
        for metric in self._gauges.values():
            metric.reset()
        for metric in self._histograms.values():
            metric.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


_registry = MetricsRegistry()
_enabled = False


def metrics_enabled() -> bool:
    """Hot-path guard: should producers feed the registry?"""
    return _enabled


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (always available; may be disabled)."""
    return _registry


def set_metrics(
    registry: MetricsRegistry | None = None, enabled: bool = True
) -> tuple[MetricsRegistry, bool]:
    """Install a registry + enabled flag; returns the previous pair."""
    global _registry, _enabled
    previous = (_registry, _enabled)
    if registry is not None:
        _registry = registry
    _enabled = enabled
    return previous


class collecting_metrics:
    """Context manager: collect into a (fresh) registry for a scope.

    ::

        with collecting_metrics() as metrics:
            profile, run = session.profile(program)
        print(metrics.to_dict()["counters"]["fastpath.known_hits"])
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: tuple[MetricsRegistry, bool] | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry, enabled=True)
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._previous is not None
        set_metrics(self._previous[0], enabled=self._previous[1])
