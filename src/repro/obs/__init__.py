"""Pipeline observability: structured tracing, metrics, self-profiling.

Kremlin's whole pitch is gprof-style visibility into *other* programs;
this package turns the same lens on the pipeline itself (frontend →
instrument → interp/bytecode → KremLib HCPA → compress → plan), in the
spirit of GAPP and TaskProf: when a profile run is slow you should be able
to see *which stage* the wall-clock went to and what the hot-path counters
were doing, without re-running under an external profiler.

Three zero-dependency pieces:

* :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer`: nested,
  deterministic-under-a-fake-clock spans around each pipeline stage
  (``lex``, ``parse``, ``lower``, ``verify``, ``instrument``, ``execute``,
  ``hcpa-update``, ``compress``, ``aggregate``, ``plan``, ...);
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms fed
  from the hot paths (fast-path hit/miss in the fused decoder, shadow
  slot allocations/evictions, dictionary-compressor hit ratio, bytes
  serialized, instructions retired per engine);
* :mod:`repro.obs.export` — exporters: a human-readable span tree, JSON
  lines, and the Chrome ``trace_event`` format loadable in
  ``about:tracing`` / Perfetto.

Overhead contract
-----------------
Disabled observability must be (nearly) free. Two mechanisms enforce it:

* spans are only placed at **stage granularity** — never per retired
  instruction — and the disabled path is a module-level singleton
  :class:`~repro.obs.trace.NullTracer` whose ``span()`` returns a cached
  no-op context manager;
* hot-path counters in the fused bytecode decoder are **decode-time
  gated**: when metrics are disabled at decode time the generated closures
  are byte-for-byte the same source as before this package existed, so
  the disabled-tracing overhead on the bytecode engine is zero by
  construction (the ``benchmarks/perf`` gate enforces <5% end to end).

Profiles stay **byte-identical** with observability enabled: spans and
counters observe the pipeline, they never feed back into timestamps, work,
critical paths, or the compression dictionary (the differential fuzz
matrix is the oracle for this).
"""

from repro.obs.export import (
    chrome_trace,
    render_metrics,
    render_tree,
    spans_to_jsonl,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting_metrics,
    get_metrics,
    metrics_enabled,
    set_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    FakeClock,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "collecting_metrics",
    "get_metrics",
    "get_tracer",
    "metrics_enabled",
    "render_metrics",
    "render_tree",
    "set_metrics",
    "set_tracer",
    "spans_to_jsonl",
    "tracing",
    "validate_chrome_trace",
]
