"""Stable public API: the :class:`KremlinSession` facade.

The one-shot :func:`repro.analyze` helper grew a tail of loose kwargs
(``filename``, ``personality``, ``entry``, ``args``, ``max_depth``) that
had to be threaded through ``profile_program`` and three planner
constructors. This module replaces that sprawl with three small **frozen**
option dataclasses — one per pipeline phase — and a session object that
owns them plus (optionally) session-scoped observability::

    from repro.api import KremlinSession, PlanOptions
    from repro.obs import Tracer, MetricsRegistry

    session = KremlinSession(
        plan_options=PlanOptions(personality="cilk"),
        tracer=Tracer(),                 # optional: trace the pipeline
        metrics=MetricsRegistry(),       # optional: hot-path counters
    )
    report = session.analyze(source)
    print(report.render_plan())
    print(render_tree(session.tracer))   # where did the wall-clock go?

``repro.analyze(...)`` remains as a thin shim that builds a session from
its legacy kwargs (with a ``DeprecationWarning`` when any are used).

Observability scoping: a session created with ``tracer=``/``metrics=``
installs them for the duration of each pipeline call and restores the
previous globals afterwards, so two sessions never bleed spans or
counters into each other. A session created without them inherits
whatever tracer/registry is globally installed (the no-op defaults unless
:func:`repro.obs.tracing`/:func:`repro.obs.collecting_metrics` are
active).
"""

from __future__ import annotations

import dataclasses
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field

from repro.api_types import (
    CheckRequest,
    CompileRequest,
    check_result_for,
    compile_result_for,
    source_digest,
)
from repro.hcpa.aggregate import AggregatedProfile, aggregate_profile
from repro.hcpa.compression import CompressionStats, compression_stats
from repro.hcpa.summaries import ParallelismProfile
from repro.instrument.compile import CompiledProgram, kremlin_cc
from repro.instrument.costs import DEFAULT_COST_MODEL, CostModel
from repro.interp.interpreter import RunResult
from repro.kremlib.profiler import profile_program
from repro.obs.metrics import MetricsRegistry, collecting_metrics, get_metrics
from repro.obs.trace import Tracer, get_tracer, tracing
from repro.parallel.executor import ParallelOptions
from repro.planner.plan import ParallelismPlan
from repro.planner.registry import create_planner
from repro.service.cache import LRUCache

#: compiled programs kept per session before LRU eviction; service
#: workers reuse sessions indefinitely, so the cache must be bounded
DEFAULT_COMPILE_CACHE_CAPACITY = 64


@dataclass(frozen=True)
class CompileOptions:
    """Options for the compile/instrument phase (``kremlin-cc``)."""

    filename: str = "<input>"
    cost_model: CostModel = field(
        default_factory=lambda: DEFAULT_COST_MODEL, repr=False
    )


@dataclass(frozen=True)
class ProfileOptions:
    """Options for the execute/profile phase (KremLib HCPA)."""

    entry: str = "main"
    args: tuple = ()
    #: limit the profiled region depth (the paper's depth window flag)
    max_depth: int | None = None
    #: abort the run past this many retired instructions
    max_instructions: int | None = None
    #: execution engine: "compiled" (AOT codegen, the default), "bytecode"
    #: (predecoded closures), or "tree" (the reference interpreter)
    engine: str = "compiled"


@dataclass(frozen=True)
class PlanOptions:
    """Options for the planning phase."""

    personality: str = "openmp"
    #: static region ids excluded before planning (§3's exclusion list)
    exclude: frozenset[int] = frozenset()


@dataclass
class KremlinReport:
    """Everything one ``analyze`` call produces."""

    program: CompiledProgram
    profile: ParallelismProfile
    aggregated: AggregatedProfile
    plan: ParallelismPlan
    run: RunResult

    def render_plan(self, limit: int | None = None) -> str:
        from repro.report import format_plan

        return format_plan(self.plan, limit)

    def render_regions(self) -> str:
        from repro.report import format_region_table

        return format_region_table(self.aggregated)

    @property
    def compression(self) -> CompressionStats:
        return compression_stats(self.profile)

    def replan(
        self, personality: str | None = None, exclude: set[int] | None = None
    ) -> ParallelismPlan:
        """Re-run planning, optionally with a different personality or an
        exclusion list (the paper's §3 workflow)."""
        planner = create_planner(personality or self.plan.personality)
        excluded = frozenset(self.plan.excluded | (exclude or set()))
        new_plan = planner.plan(self.aggregated, excluded)
        new_plan.program_name = self.plan.program_name
        return new_plan


@dataclass
class ExecutionReport:
    """Everything one ``execute`` call produces: the analysis report
    plus the parallel execution outcome and the measured-vs-predicted
    comparison."""

    report: KremlinReport
    outcome: "ExecutionOutcome"
    comparison: "SpeedupComparison"

    @property
    def plan(self) -> ParallelismPlan:
        return self.report.plan

    def render(self) -> str:
        lines = [self.comparison.render()]
        outcome = self.outcome
        if outcome.fallback:
            lines.append(f"serial fallback: {outcome.fallback_reason}")
        if outcome.mismatch:
            lines.append(f"STATE MISMATCH: {outcome.mismatch}")
        for stats in outcome.site_stats:
            lines.append(
                f"site {stats.spec.region_name} [{stats.spec.verdict}] "
                f"{stats.spec.location}: {stats.entries} entries, "
                f"{stats.dispatched_chunks} worker chunks, "
                f"{stats.worker_seconds * 1000.0:.1f}ms worker time"
            )
        for refused in outcome.refused:
            lines.append(
                f"refused {refused.region_name} {refused.location}: "
                f"{refused.reason}"
            )
        return "\n".join(lines)


class KremlinSession:
    """The stable facade over the whole pipeline.

    Construct once with frozen option bundles, then call the phase
    methods (:meth:`compile`, :meth:`profile`, :meth:`aggregate`,
    :meth:`plan`) or the one-shot :meth:`analyze`. Sessions are cheap;
    make a new one rather than mutating options.
    """

    def __init__(
        self,
        compile_options: CompileOptions | None = None,
        profile_options: ProfileOptions | None = None,
        plan_options: PlanOptions | None = None,
        execute_options: ParallelOptions | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        compile_cache_capacity: int = DEFAULT_COMPILE_CACHE_CAPACITY,
    ):
        self.compile_options = compile_options or CompileOptions()
        self.profile_options = profile_options or ProfileOptions()
        self.plan_options = plan_options or PlanOptions()
        self.execute_options = execute_options or ParallelOptions()
        #: session-scoped tracer; None = use the globally installed one
        self.tracer = tracer
        #: session-scoped metric registry; None = use the global one
        self.metrics = metrics
        #: bounded compile cache: (source digest, filename, analyze) ->
        #: CompiledProgram. Generated engine code objects hang off the
        #: program (codegen_unit caches them per program), so a hit skips
        #: recompilation AND codegen. Both the instrumented source and
        #: the executor's transformed-source recompile route through it.
        self._compile_cache = LRUCache(
            compile_cache_capacity, metric_prefix="session.compile_cache"
        )

    # ------------------------------------------------------------------
    # Observability scoping
    # ------------------------------------------------------------------

    @contextmanager
    def _observed(self):
        """Install session-scoped tracer/metrics around one phase call."""
        with ExitStack() as stack:
            if self.tracer is not None:
                stack.enter_context(tracing(self.tracer))
            if self.metrics is not None:
                stack.enter_context(collecting_metrics(self.metrics))
            yield

    # ------------------------------------------------------------------
    # Pipeline phases
    # ------------------------------------------------------------------

    def compile(self, source: str) -> CompiledProgram:
        """Compile + instrument MiniC source (the ``kremlin-cc`` step).

        Results are cached by source hash: repeat compile/profile calls on
        the same session reuse the CompiledProgram — and with it every
        code object the execution engines generated for it."""
        return self.compile_named(source, self.compile_options.filename)

    def compile_named(
        self, source: str, filename: str, analyze: bool = True
    ) -> CompiledProgram:
        """:meth:`compile` with an explicit filename (service endpoints
        carry the filename per-request rather than per-session). The
        cache key includes the filename and the analyze flag, so the
        executor's ``analyze=False`` recompiles never shadow a fully
        analyzed program."""
        key = (source_digest(source), filename, analyze)
        with self._observed():
            cached = self._compile_cache.get(key)
            if cached is not None:
                return cached
            program = kremlin_cc(
                source,
                filename,
                cost_model=self.compile_options.cost_model,
                analyze=analyze,
            )
            self._compile_cache.put(key, program)
            return program

    def _compile_transformed(
        self, source: str, filename: str
    ) -> CompiledProgram:
        """Compiler hook handed to :class:`ParallelExecutor`: transformed
        sources go through the session cache too, so re-executing a plan
        (or executing the same plan from many service requests) compiles
        each rewritten source once."""
        return self.compile_named(source, filename, analyze=False)

    def check(self, source: str):
        """Static analysis only: compile (no execution) and return the
        :class:`~repro.analysis.driver.ModuleAnalysis` with per-loop
        DOALL-safety verdicts and lint diagnostics."""
        program = self.compile(source)
        assert program.analysis is not None
        return program.analysis

    def serve(self, request):
        """Answer one typed API request (:mod:`repro.api_types`).

        The session speaks the same versioned payloads as the wire
        protocol, so the server's worker threads, the CLI, and in-process
        embedders all go through this one dispatch. Currently handles the
        session-local methods — :class:`CompileRequest` and
        :class:`CheckRequest`; store-backed methods (submit/plan/summary)
        live on the server, which owns the store."""
        if isinstance(request, CompileRequest):
            digest = source_digest(request.source)
            cached = (digest, request.filename, True) in self._compile_cache
            program = self.compile_named(request.source, request.filename)
            return compile_result_for(program, digest, cached=cached)
        if isinstance(request, CheckRequest):
            digest = source_digest(request.source)
            cached = (digest, request.filename, True) in self._compile_cache
            program = self.compile_named(request.source, request.filename)
            assert program.analysis is not None
            return check_result_for(
                program, digest, request.source, cached=cached
            )
        raise TypeError(
            f"KremlinSession.serve cannot handle "
            f"{type(request).__name__}; expected CompileRequest or "
            f"CheckRequest"
        )

    def profile(
        self, program: CompiledProgram
    ) -> tuple[ParallelismProfile, RunResult]:
        """Execute under the KremLib HCPA runtime."""
        options = self.profile_options
        with self._observed():
            return profile_program(
                program,
                entry=options.entry,
                args=options.args,
                max_depth=options.max_depth,
                max_instructions=options.max_instructions,
                engine=options.engine,
            )

    def aggregate(self, profile: ParallelismProfile) -> AggregatedProfile:
        """Per-region aggregation on the compressed dictionary."""
        with self._observed():
            tracer = get_tracer()
            with tracer.span("aggregate"):
                aggregated = aggregate_profile(profile)
            with tracer.span("compress"):
                stats = compression_stats(profile)
                tracer.annotate(
                    dictionary_entries=stats.dictionary_entries,
                    ratio=round(stats.ratio, 2),
                )
            return aggregated

    def plan(
        self,
        aggregated: AggregatedProfile,
        exclude: frozenset[int] | set[int] | None = None,
    ) -> ParallelismPlan:
        """Rank regions under the session's planner personality."""
        options = self.plan_options
        excluded = frozenset(options.exclude | set(exclude or ()))
        with self._observed():
            tracer = get_tracer()
            with tracer.span("plan", personality=options.personality):
                plan = create_planner(options.personality).plan(
                    aggregated, excluded
                )
                tracer.annotate(regions=len(plan.items))
            return plan

    def analyze(self, source: str) -> KremlinReport:
        """One-shot pipeline: compile, profile, aggregate, and plan."""
        with self._observed():
            tracer = get_tracer()
            with tracer.span("analyze", file=self.compile_options.filename):
                program = self.compile(source)
                profile, run = self.profile(program)
                aggregated = self.aggregate(profile)
                plan = self.plan(aggregated)
                plan.program_name = self.compile_options.filename
                self._record_run_metrics(run)
            return KremlinReport(
                program=program,
                profile=profile,
                aggregated=aggregated,
                plan=plan,
                run=run,
            )

    def execute(self, source: str) -> ExecutionReport:
        """Close the loop: analyze, then *run* the plan's safe loops on
        the parallel backend and compare measured vs predicted speedup.

        The serial run is ground truth: any parallel divergence or
        failure falls back to it (``outcome.fallback``/``mismatch``).
        """
        from repro.exec_model.compare import compare_measured_predicted
        from repro.parallel.executor import ParallelExecutor

        report = self.analyze(source)
        # The profile phase owns engine/entry/instruction budget; overlay
        # them so the measured run executes exactly what was profiled.
        options = dataclasses.replace(
            self.execute_options,
            engine=self.profile_options.engine,
            entry=self.profile_options.entry,
            max_instructions=self.profile_options.max_instructions,
        )
        with self._observed():
            tracer = get_tracer()
            with tracer.span(
                "execute",
                workers=options.workers,
                mode=options.mode,
            ):
                with ParallelExecutor(
                    options, compiler=self._compile_transformed
                ) as executor:
                    outcome = executor.execute(report.program, report.plan)
                comparison = compare_measured_predicted(
                    report.aggregated,
                    outcome,
                    program_name=self.compile_options.filename,
                )
        return ExecutionReport(
            report=report, outcome=outcome, comparison=comparison
        )

    def _record_run_metrics(self, run: RunResult) -> None:
        from repro.obs.metrics import metrics_enabled

        if not metrics_enabled():
            return
        registry = get_metrics()
        registry.counter("session.analyses").inc()
        registry.counter(
            f"interp.instructions.{self.profile_options.engine}"
        ).inc(run.instructions_retired)


def analyze_with_options(
    source: str,
    compile_options: CompileOptions | None = None,
    profile_options: ProfileOptions | None = None,
    plan_options: PlanOptions | None = None,
) -> KremlinReport:
    """Functional one-shot form of :meth:`KremlinSession.analyze`."""
    return KremlinSession(
        compile_options=compile_options,
        profile_options=profile_options,
        plan_options=plan_options,
    ).analyze(source)


__all__ = [
    "CompileOptions",
    "DEFAULT_COMPILE_CACHE_CAPACITY",
    "ExecutionReport",
    "KremlinReport",
    "KremlinSession",
    "ParallelOptions",
    "PlanOptions",
    "ProfileOptions",
    "analyze_with_options",
]
