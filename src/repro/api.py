"""Stable public API: the :class:`KremlinSession` facade.

The one-shot :func:`repro.analyze` helper grew a tail of loose kwargs
(``filename``, ``personality``, ``entry``, ``args``, ``max_depth``) that
had to be threaded through ``profile_program`` and three planner
constructors. This module replaces that sprawl with three small **frozen**
option dataclasses — one per pipeline phase — and a session object that
owns them plus (optionally) session-scoped observability::

    from repro.api import KremlinSession, PlanOptions
    from repro.obs import Tracer, MetricsRegistry

    session = KremlinSession(
        plan_options=PlanOptions(personality="cilk"),
        tracer=Tracer(),                 # optional: trace the pipeline
        metrics=MetricsRegistry(),       # optional: hot-path counters
    )
    report = session.analyze(source)
    print(report.render_plan())
    print(render_tree(session.tracer))   # where did the wall-clock go?

``repro.analyze(...)`` remains as a thin shim that builds a session from
its legacy kwargs (with a ``DeprecationWarning`` when any are used).

Observability scoping: a session created with ``tracer=``/``metrics=``
installs them for the duration of each pipeline call and restores the
previous globals afterwards, so two sessions never bleed spans or
counters into each other. A session created without them inherits
whatever tracer/registry is globally installed (the no-op defaults unless
:func:`repro.obs.tracing`/:func:`repro.obs.collecting_metrics` are
active).
"""

from __future__ import annotations

import hashlib
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field

from repro.hcpa.aggregate import AggregatedProfile, aggregate_profile
from repro.hcpa.compression import CompressionStats, compression_stats
from repro.hcpa.summaries import ParallelismProfile
from repro.instrument.compile import CompiledProgram, kremlin_cc
from repro.instrument.costs import DEFAULT_COST_MODEL, CostModel
from repro.interp.interpreter import RunResult
from repro.kremlib.profiler import profile_program
from repro.obs.metrics import MetricsRegistry, collecting_metrics, get_metrics
from repro.obs.trace import Tracer, get_tracer, tracing
from repro.planner.plan import ParallelismPlan
from repro.planner.registry import create_planner


@dataclass(frozen=True)
class CompileOptions:
    """Options for the compile/instrument phase (``kremlin-cc``)."""

    filename: str = "<input>"
    cost_model: CostModel = field(
        default_factory=lambda: DEFAULT_COST_MODEL, repr=False
    )


@dataclass(frozen=True)
class ProfileOptions:
    """Options for the execute/profile phase (KremLib HCPA)."""

    entry: str = "main"
    args: tuple = ()
    #: limit the profiled region depth (the paper's depth window flag)
    max_depth: int | None = None
    #: abort the run past this many retired instructions
    max_instructions: int | None = None
    #: execution engine: "compiled" (AOT codegen, the default), "bytecode"
    #: (predecoded closures), or "tree" (the reference interpreter)
    engine: str = "compiled"


@dataclass(frozen=True)
class PlanOptions:
    """Options for the planning phase."""

    personality: str = "openmp"
    #: static region ids excluded before planning (§3's exclusion list)
    exclude: frozenset[int] = frozenset()


@dataclass(frozen=True)
class ExecuteOptions:
    """Options for the parallel execution phase (``kremlin run``)."""

    #: total execution lanes (master + pool workers); 1 = serial only
    workers: int = 2
    #: pool start method, or "inline" to run chunks in-process
    mode: str = "fork"
    #: pre-compile the program in each pool worker before the timed run
    warmup: bool = True
    #: combine float reductions in parallel (order-sensitive; off for
    #: bit-exactness — see docs/PARALLEL.md)
    allow_float_reductions: bool = False


@dataclass
class KremlinReport:
    """Everything one ``analyze`` call produces."""

    program: CompiledProgram
    profile: ParallelismProfile
    aggregated: AggregatedProfile
    plan: ParallelismPlan
    run: RunResult

    def render_plan(self, limit: int | None = None) -> str:
        from repro.report import format_plan

        return format_plan(self.plan, limit)

    def render_regions(self) -> str:
        from repro.report import format_region_table

        return format_region_table(self.aggregated)

    @property
    def compression(self) -> CompressionStats:
        return compression_stats(self.profile)

    def replan(
        self, personality: str | None = None, exclude: set[int] | None = None
    ) -> ParallelismPlan:
        """Re-run planning, optionally with a different personality or an
        exclusion list (the paper's §3 workflow)."""
        planner = create_planner(personality or self.plan.personality)
        excluded = frozenset(self.plan.excluded | (exclude or set()))
        new_plan = planner.plan(self.aggregated, excluded)
        new_plan.program_name = self.plan.program_name
        return new_plan


@dataclass
class ExecutionReport:
    """Everything one ``execute`` call produces: the analysis report
    plus the parallel execution outcome and the measured-vs-predicted
    comparison."""

    report: KremlinReport
    outcome: "ExecutionOutcome"
    comparison: "SpeedupComparison"

    @property
    def plan(self) -> ParallelismPlan:
        return self.report.plan

    def render(self) -> str:
        lines = [self.comparison.render()]
        outcome = self.outcome
        if outcome.fallback:
            lines.append(f"serial fallback: {outcome.fallback_reason}")
        if outcome.mismatch:
            lines.append(f"STATE MISMATCH: {outcome.mismatch}")
        for stats in outcome.site_stats:
            lines.append(
                f"site {stats.spec.region_name} [{stats.spec.verdict}] "
                f"{stats.spec.location}: {stats.entries} entries, "
                f"{stats.dispatched_chunks} worker chunks, "
                f"{stats.worker_seconds * 1000.0:.1f}ms worker time"
            )
        for refused in outcome.refused:
            lines.append(
                f"refused {refused.region_name} {refused.location}: "
                f"{refused.reason}"
            )
        return "\n".join(lines)


class KremlinSession:
    """The stable facade over the whole pipeline.

    Construct once with frozen option bundles, then call the phase
    methods (:meth:`compile`, :meth:`profile`, :meth:`aggregate`,
    :meth:`plan`) or the one-shot :meth:`analyze`. Sessions are cheap;
    make a new one rather than mutating options.
    """

    def __init__(
        self,
        compile_options: CompileOptions | None = None,
        profile_options: ProfileOptions | None = None,
        plan_options: PlanOptions | None = None,
        execute_options: ExecuteOptions | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.compile_options = compile_options or CompileOptions()
        self.profile_options = profile_options or ProfileOptions()
        self.plan_options = plan_options or PlanOptions()
        self.execute_options = execute_options or ExecuteOptions()
        #: session-scoped tracer; None = use the globally installed one
        self.tracer = tracer
        #: session-scoped metric registry; None = use the global one
        self.metrics = metrics
        #: compile cache: source hash -> CompiledProgram. Generated engine
        #: code objects hang off the program (codegen_unit caches them per
        #: program), so a cache hit skips recompilation AND codegen — the
        #: first step toward the ROADMAP service-mode cache.
        self._compile_cache: dict[str, CompiledProgram] = {}

    # ------------------------------------------------------------------
    # Observability scoping
    # ------------------------------------------------------------------

    @contextmanager
    def _observed(self):
        """Install session-scoped tracer/metrics around one phase call."""
        with ExitStack() as stack:
            if self.tracer is not None:
                stack.enter_context(tracing(self.tracer))
            if self.metrics is not None:
                stack.enter_context(collecting_metrics(self.metrics))
            yield

    # ------------------------------------------------------------------
    # Pipeline phases
    # ------------------------------------------------------------------

    def compile(self, source: str) -> CompiledProgram:
        """Compile + instrument MiniC source (the ``kremlin-cc`` step).

        Results are cached by source hash: repeat compile/profile calls on
        the same session reuse the CompiledProgram — and with it every
        code object the execution engines generated for it."""
        options = self.compile_options
        key = hashlib.sha256(source.encode("utf-8")).hexdigest()
        with self._observed():
            cached = self._compile_cache.get(key)
            self._count_compile_cache(hit=cached is not None)
            if cached is not None:
                return cached
            program = kremlin_cc(
                source, options.filename, cost_model=options.cost_model
            )
            self._compile_cache[key] = program
            return program

    def _count_compile_cache(self, hit: bool) -> None:
        from repro.obs.metrics import metrics_enabled

        if not metrics_enabled():
            return
        name = "session.compile_cache.hits" if hit else \
            "session.compile_cache.misses"
        get_metrics().counter(name).inc()

    def check(self, source: str):
        """Static analysis only: compile (no execution) and return the
        :class:`~repro.analysis.driver.ModuleAnalysis` with per-loop
        DOALL-safety verdicts and lint diagnostics."""
        program = self.compile(source)
        assert program.analysis is not None
        return program.analysis

    def profile(
        self, program: CompiledProgram
    ) -> tuple[ParallelismProfile, RunResult]:
        """Execute under the KremLib HCPA runtime."""
        options = self.profile_options
        with self._observed():
            return profile_program(
                program,
                entry=options.entry,
                args=options.args,
                max_depth=options.max_depth,
                max_instructions=options.max_instructions,
                engine=options.engine,
            )

    def aggregate(self, profile: ParallelismProfile) -> AggregatedProfile:
        """Per-region aggregation on the compressed dictionary."""
        with self._observed():
            tracer = get_tracer()
            with tracer.span("aggregate"):
                aggregated = aggregate_profile(profile)
            with tracer.span("compress"):
                stats = compression_stats(profile)
                tracer.annotate(
                    dictionary_entries=stats.dictionary_entries,
                    ratio=round(stats.ratio, 2),
                )
            return aggregated

    def plan(
        self,
        aggregated: AggregatedProfile,
        exclude: frozenset[int] | set[int] | None = None,
    ) -> ParallelismPlan:
        """Rank regions under the session's planner personality."""
        options = self.plan_options
        excluded = frozenset(options.exclude | set(exclude or ()))
        with self._observed():
            tracer = get_tracer()
            with tracer.span("plan", personality=options.personality):
                plan = create_planner(options.personality).plan(
                    aggregated, excluded
                )
                tracer.annotate(regions=len(plan.items))
            return plan

    def analyze(self, source: str) -> KremlinReport:
        """One-shot pipeline: compile, profile, aggregate, and plan."""
        with self._observed():
            tracer = get_tracer()
            with tracer.span("analyze", file=self.compile_options.filename):
                program = self.compile(source)
                profile, run = self.profile(program)
                aggregated = self.aggregate(profile)
                plan = self.plan(aggregated)
                plan.program_name = self.compile_options.filename
                self._record_run_metrics(run)
            return KremlinReport(
                program=program,
                profile=profile,
                aggregated=aggregated,
                plan=plan,
                run=run,
            )

    def execute(self, source: str) -> ExecutionReport:
        """Close the loop: analyze, then *run* the plan's safe loops on
        the parallel backend and compare measured vs predicted speedup.

        The serial run is ground truth: any parallel divergence or
        failure falls back to it (``outcome.fallback``/``mismatch``).
        """
        from repro.exec_model.compare import compare_measured_predicted
        from repro.parallel.executor import ParallelExecutor, ParallelOptions

        report = self.analyze(source)
        options = self.execute_options
        with self._observed():
            tracer = get_tracer()
            with tracer.span(
                "execute",
                workers=options.workers,
                mode=options.mode,
            ):
                parallel_options = ParallelOptions(
                    workers=options.workers,
                    engine=self.profile_options.engine,
                    mode=options.mode,
                    entry=self.profile_options.entry,
                    max_instructions=self.profile_options.max_instructions,
                    allow_float_reductions=options.allow_float_reductions,
                    warmup=options.warmup,
                )
                with ParallelExecutor(parallel_options) as executor:
                    outcome = executor.execute(report.program, report.plan)
                comparison = compare_measured_predicted(
                    report.aggregated,
                    outcome,
                    program_name=self.compile_options.filename,
                )
        return ExecutionReport(
            report=report, outcome=outcome, comparison=comparison
        )

    def _record_run_metrics(self, run: RunResult) -> None:
        from repro.obs.metrics import metrics_enabled

        if not metrics_enabled():
            return
        registry = get_metrics()
        registry.counter("session.analyses").inc()
        registry.counter(
            f"interp.instructions.{self.profile_options.engine}"
        ).inc(run.instructions_retired)


def analyze_with_options(
    source: str,
    compile_options: CompileOptions | None = None,
    profile_options: ProfileOptions | None = None,
    plan_options: PlanOptions | None = None,
) -> KremlinReport:
    """Functional one-shot form of :meth:`KremlinSession.analyze`."""
    return KremlinSession(
        compile_options=compile_options,
        profile_options=profile_options,
        plan_options=plan_options,
    ).analyze(source)


__all__ = [
    "CompileOptions",
    "ExecuteOptions",
    "ExecutionReport",
    "KremlinReport",
    "KremlinSession",
    "PlanOptions",
    "ProfileOptions",
    "analyze_with_options",
]
