"""IR instruction set.

Every instruction carries a source ``span`` (for diagnostics and region
labeling) and a ``cost`` (its latency in the machine cost model, filled in by
the instrumentation pass; see :mod:`repro.instrument.costs`).

Dependence-breaking metadata: ``BinOp.dep_break`` marks induction- and
reduction-variable updates. The KremLib shadow-memory update rule ignores the
old-value operand of such instructions (paper §4.1, *Resolving False and
Easy-to-Break Dependencies*), so an accumulation like ``s += a[i]`` does not
serialize an otherwise parallel loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.frontend.source import SourceSpan
from repro.ir.types import ArrayType, ScalarType, Type
from repro.ir.values import Register, Value

if TYPE_CHECKING:
    from repro.ir.basicblock import BasicBlock

# Ops whose result is int regardless of operand types.
COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
LOGICAL_OPS = frozenset({"&&", "||"})
BITWISE_OPS = frozenset({"&", "|", "^", "<<", ">>"})
ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})

ALL_BINARY_OPS = COMPARISON_OPS | LOGICAL_OPS | BITWISE_OPS | ARITHMETIC_OPS

#: Associative/commutative ops eligible for reduction-dependence breaking.
REDUCTION_OPS = frozenset({"+", "*", "&", "|", "^"})


@dataclass(eq=False)
class Instruction:
    """Base class for non-terminator instructions."""

    span: SourceSpan
    result: Register | None = field(default=None, kw_only=True)
    cost: int = field(default=0, kw_only=True)

    @property
    def operands(self) -> tuple[Value, ...]:
        return ()

    @property
    def opcode(self) -> str:
        return type(self).__name__.lower()


@dataclass(eq=False)
class BinOp(Instruction):
    op: str = ""
    lhs: Value = None  # type: ignore[assignment]
    rhs: Value = None  # type: ignore[assignment]
    #: None, 'induction', or 'reduction'. When set, ``break_operand`` names
    #: the operand index (0=lhs, 1=rhs) whose dependence is ignored by the
    #: shadow update rule.
    dep_break: str | None = field(default=None, kw_only=True)
    break_operand: int = field(default=0, kw_only=True)

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.lhs, self.rhs)

    @property
    def opcode(self) -> str:
        return f"binop.{self.op}"


@dataclass(eq=False)
class UnOp(Instruction):
    op: str = ""  # '-' or '!'
    operand: Value = None  # type: ignore[assignment]

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.operand,)

    @property
    def opcode(self) -> str:
        return f"unop.{self.op}"


@dataclass(eq=False)
class Copy(Instruction):
    """Copy a value into a named register.

    Lowering assigns every source variable a single virtual register; ``copy``
    is how assignments reach it. Zero latency in the cost model — it models a
    register rename, and keeping one register per variable is what makes the
    shadow *register table* (paper §4.1) line up with source variables.
    """

    operand: Value = None  # type: ignore[assignment]

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.operand,)


@dataclass(eq=False)
class Cast(Instruction):
    target: ScalarType = None  # type: ignore[assignment]
    operand: Value = None  # type: ignore[assignment]

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.operand,)

    @property
    def opcode(self) -> str:
        return f"cast.{self.target}"


@dataclass(eq=False)
class Load(Instruction):
    """Load a scalar from memory. ``mem`` is an array reference (register or
    global) or a scalar global cell; ``index`` is a linearized element index
    (None for scalar globals)."""

    mem: Value = None  # type: ignore[assignment]
    index: Value | None = None

    @property
    def operands(self) -> tuple[Value, ...]:
        if self.index is None:
            return (self.mem,)
        return (self.mem, self.index)


@dataclass(eq=False)
class Store(Instruction):
    """Store ``value`` to memory; mirror of :class:`Load`."""

    mem: Value = None  # type: ignore[assignment]
    index: Value | None = None
    value: Value = None  # type: ignore[assignment]

    @property
    def operands(self) -> tuple[Value, ...]:
        if self.index is None:
            return (self.mem, self.value)
        return (self.mem, self.index, self.value)


@dataclass(eq=False)
class Call(Instruction):
    """Call a user function or builtin. ``result`` is None for void calls."""

    callee: str = ""
    args: list[Value] = field(default_factory=list)
    #: True when the callee is a KremLib/libc-style builtin rather than a
    #: user-defined MiniC function.
    is_builtin: bool = field(default=False, kw_only=True)

    @property
    def operands(self) -> tuple[Value, ...]:
        return tuple(self.args)

    @property
    def opcode(self) -> str:
        return f"call.{self.callee}" if self.is_builtin else "call"


@dataclass(eq=False)
class Alloca(Instruction):
    """Allocate a local array; the result register holds its reference."""

    array_type: ArrayType = None  # type: ignore[assignment]

    @property
    def opcode(self) -> str:
        return "alloca"


@dataclass(eq=False)
class RegionEnter(Instruction):
    """Marks entry into a static region (function, loop, or loop body)."""

    region_id: int = -1

    @property
    def opcode(self) -> str:
        return "region_enter"


@dataclass(eq=False)
class RegionExit(Instruction):
    """Marks exit from a static region."""

    region_id: int = -1

    @property
    def opcode(self) -> str:
        return "region_exit"


# ----------------------------------------------------------------------
# Terminators
# ----------------------------------------------------------------------


@dataclass(eq=False)
class Terminator:
    """Base class for block terminators."""

    span: SourceSpan
    cost: int = field(default=0, kw_only=True)

    @property
    def successors(self) -> tuple["BasicBlock", ...]:
        return ()

    @property
    def operands(self) -> tuple[Value, ...]:
        return ()

    @property
    def opcode(self) -> str:
        return type(self).__name__.lower()


@dataclass(eq=False)
class Jump(Terminator):
    target: "BasicBlock" = None  # type: ignore[assignment]

    @property
    def successors(self) -> tuple["BasicBlock", ...]:
        return (self.target,)


@dataclass(eq=False)
class Branch(Terminator):
    cond: Value = None  # type: ignore[assignment]
    then_block: "BasicBlock" = None  # type: ignore[assignment]
    else_block: "BasicBlock" = None  # type: ignore[assignment]

    @property
    def successors(self) -> tuple["BasicBlock", ...]:
        return (self.then_block, self.else_block)

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.cond,)


@dataclass(eq=False)
class Ret(Terminator):
    value: Value | None = None

    @property
    def operands(self) -> tuple[Value, ...]:
        return (self.value,) if self.value is not None else ()


def result_type_of_binop(op: str, lhs: Type, rhs: Type) -> Type:
    """Result type of a binary op under MiniC's conversion rules."""
    from repro.ir.types import INT, common_type

    if op in COMPARISON_OPS or op in LOGICAL_OPS:
        return INT
    if op in BITWISE_OPS or op == "%":
        return INT
    return common_type(lhs, rhs)
