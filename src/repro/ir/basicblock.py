"""Basic blocks: straight-line instruction lists with one terminator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction, Terminator


@dataclass(eq=False)
class BasicBlock:
    """A basic block.

    Predecessors are not stored; compute them per-function with
    :func:`repro.analysis.cfg.predecessor_map` so they can never go stale
    while passes mutate the graph.
    """

    label: str
    instructions: list[Instruction] = field(default_factory=list)
    terminator: Terminator | None = None
    #: Filled by lowering: the innermost static region (loop body / loop /
    #: function) this block belongs to. Used by instrumentation and tests.
    region_id: int = -1

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def successors(self) -> tuple["BasicBlock", ...]:
        if self.terminator is None:
            return ()
        return self.terminator.successors

    def append(self, instruction: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"appending to terminated block {self.label}")
        self.instructions.append(instruction)
        return instruction

    def terminate(self, terminator: Terminator) -> Terminator:
        if self.is_terminated:
            raise ValueError(f"block {self.label} already terminated")
        self.terminator = terminator
        return terminator

    def __repr__(self) -> str:
        return f"<block {self.label}>"

    def __hash__(self) -> int:
        return id(self)
