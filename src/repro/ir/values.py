"""IR values: virtual registers, constants, and global references."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.types import ScalarType, Type


class Value:
    """Base class for anything an instruction can consume as an operand."""

    type: Type


@dataclass(eq=False)
class Register(Value):
    """A virtual register.

    Registers are identified by their ``index`` within a function. ``name``
    is a debugging hint (the source variable name, or a synthesized temp
    name). Registers with array type hold array references at runtime (array
    parameters and ``alloca`` results).
    """

    index: int
    type: Type
    name: str = ""

    def __repr__(self) -> str:
        suffix = f":{self.name}" if self.name else ""
        return f"%{self.index}{suffix}"

    def __hash__(self) -> int:
        return id(self)


@dataclass(frozen=True)
class Constant(Value):
    """An immediate scalar constant."""

    value: int | float
    type: ScalarType = field()

    def __repr__(self) -> str:
        return f"{self.value}:{self.type}"


@dataclass(frozen=True)
class StringConst(Value):
    """A string literal; only valid as an argument to the ``print`` builtin."""

    value: str
    type: ScalarType = field(default_factory=lambda: ScalarType("str"))

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class GlobalRef(Value):
    """A reference to a module-level variable (scalar cell or array)."""

    name: str
    type: Type

    def __repr__(self) -> str:
        return f"@{self.name}"
