"""IR modules: a translation unit's globals, functions, and region table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ir.function import Function
from repro.ir.types import ArrayType, ScalarType, Type

if TYPE_CHECKING:
    from repro.instrument.regions import StaticRegionTree


@dataclass(frozen=True)
class GlobalVar:
    """A module-level variable: scalar cell or array storage."""

    name: str
    type: Type
    init: int | float | None = None  # scalar initializer only

    @property
    def is_array(self) -> bool:
        return isinstance(self.type, ArrayType)


@dataclass(eq=False)
class Module:
    """A compiled MiniC translation unit.

    ``regions`` (the static region tree: one node per function, loop, and
    loop body) is attached by lowering and consumed by the instrumentation
    pass, the KremLib runtime, and the planner.
    """

    name: str = "<module>"
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    functions: dict[str, Function] = field(default_factory=dict)
    regions: "StaticRegionTree | None" = None

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise ValueError(f"duplicate global {var.name!r}")
        self.globals[var.name] = var
        return var

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function {name!r} in module {self.name}") from None

    @property
    def main(self) -> Function:
        return self.function("main")

    def scalar_globals(self) -> list[GlobalVar]:
        return [g for g in self.globals.values() if not g.is_array]

    def array_globals(self) -> list[GlobalVar]:
        return [g for g in self.globals.values() if g.is_array]
