"""A convenience builder for emitting IR instructions into basic blocks."""

from __future__ import annotations

from repro.frontend.source import SourceSpan
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Copy,
    Jump,
    Load,
    RegionEnter,
    RegionExit,
    Ret,
    Store,
    UnOp,
    result_type_of_binop,
)
from repro.ir.types import FLOAT, INT, ArrayType, ScalarType, Type
from repro.ir.values import Constant, Register, Value


class IRBuilder:
    """Emits instructions at the end of a current block.

    All ``emit_*`` helpers create the result register (when the instruction
    produces one), append the instruction, and return the result value.
    """

    def __init__(self, function: Function):
        self.function = function
        self.block: BasicBlock | None = None

    def set_block(self, block: BasicBlock | None) -> None:
        self.block = block

    @property
    def current(self) -> BasicBlock:
        if self.block is None:
            raise ValueError("no insertion block set")
        return self.block

    @property
    def is_terminated(self) -> bool:
        """True if there is no live insertion point (block done or unset)."""
        return self.block is None or self.block.is_terminated

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------

    @staticmethod
    def const_int(value: int) -> Constant:
        return Constant(int(value), INT)

    @staticmethod
    def const_float(value: float) -> Constant:
        return Constant(float(value), FLOAT)

    # ------------------------------------------------------------------
    # Instruction emitters
    # ------------------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, span: SourceSpan) -> Register:
        result_type = result_type_of_binop(op, lhs.type, rhs.type)
        result = self.function.new_register(result_type)
        self.current.append(BinOp(span, op=op, lhs=lhs, rhs=rhs, result=result))
        return result

    def unop(self, op: str, operand: Value, span: SourceSpan) -> Register:
        result_type = INT if op == "!" else operand.type
        result = self.function.new_register(result_type)
        self.current.append(UnOp(span, op=op, operand=operand, result=result))
        return result

    def copy(self, operand: Value, dest: Register, span: SourceSpan) -> Register:
        self.current.append(Copy(span, operand=operand, result=dest))
        return dest

    def cast(self, target: ScalarType, operand: Value, span: SourceSpan) -> Value:
        if operand.type == target:
            return operand
        if isinstance(operand, Constant):
            value = int(operand.value) if target is INT else float(operand.value)
            return Constant(value, target)
        result = self.function.new_register(target)
        self.current.append(Cast(span, target=target, operand=operand, result=result))
        return result

    def coerce(self, operand: Value, target: Type, span: SourceSpan) -> Value:
        """Insert a cast if the scalar types differ; arrays pass through."""
        if operand.type == target or not isinstance(target, ScalarType):
            return operand
        return self.cast(target, operand, span)

    def load(self, mem: Value, index: Value | None, span: SourceSpan) -> Register:
        element = mem.type.element if isinstance(mem.type, ArrayType) else mem.type
        result = self.function.new_register(element)
        self.current.append(Load(span, mem=mem, index=index, result=result))
        return result

    def store(self, mem: Value, index: Value | None, value: Value, span: SourceSpan) -> None:
        self.current.append(Store(span, mem=mem, index=index, value=value))

    def call(
        self,
        callee: str,
        args: list[Value],
        return_type: Type,
        span: SourceSpan,
        is_builtin: bool = False,
    ) -> Register | None:
        result = None
        if isinstance(return_type, ScalarType) and not return_type.is_void:
            result = self.function.new_register(return_type)
        self.current.append(
            Call(span, callee=callee, args=args, result=result, is_builtin=is_builtin)
        )
        return result

    def alloca(self, array_type: ArrayType, name: str, span: SourceSpan) -> Register:
        result = self.function.new_register(array_type, name=name)
        self.current.append(Alloca(span, array_type=array_type, result=result))
        return result

    def region_enter(self, region_id: int, span: SourceSpan) -> None:
        self.current.append(RegionEnter(span, region_id=region_id))

    def region_exit(self, region_id: int, span: SourceSpan) -> None:
        self.current.append(RegionExit(span, region_id=region_id))

    # ------------------------------------------------------------------
    # Terminators
    # ------------------------------------------------------------------

    def jump(self, target: BasicBlock, span: SourceSpan) -> None:
        self.current.terminate(Jump(span, target=target))
        self.block = None

    def branch(
        self, cond: Value, then_block: BasicBlock, else_block: BasicBlock, span: SourceSpan
    ) -> None:
        self.current.terminate(
            Branch(span, cond=cond, then_block=then_block, else_block=else_block)
        )
        self.block = None

    def ret(self, value: Value | None, span: SourceSpan) -> None:
        self.current.terminate(Ret(span, value=value))
        self.block = None
