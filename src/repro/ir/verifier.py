"""Structural verifier for IR modules.

Checks invariants that lowering and instrumentation must uphold; run in tests
after every pipeline stage that creates or mutates IR.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    ALL_BINARY_OPS,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Jump,
    Load,
    RegionEnter,
    RegionExit,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import Module
from repro.ir.types import ArrayType, ScalarType
from repro.ir.values import Constant, GlobalRef, Register


class VerificationError(Exception):
    """Raised when an IR module violates a structural invariant."""


def _fail(function: Function, block_label: str, message: str) -> None:
    raise VerificationError(f"{function.name}/{block_label}: {message}")


def verify_function(function: Function, module: Module | None = None) -> None:
    seen_labels: set[str] = set()
    block_set = set(id(b) for b in function.blocks)
    defined: set[int] = {id(p) for p in function.params}

    if not function.blocks:
        raise VerificationError(f"{function.name}: function has no blocks")

    # First pass: gather all definitions (non-SSA IR, so a use may precede the
    # textual definition only across blocks via loops; we check that every
    # used register is defined *somewhere* in the function). Register indices
    # must be unique per function: two distinct Register objects sharing an
    # index would print identically (%N) while behaving as separate storage,
    # which breaks every pass that reasons about registers by name.
    by_index: dict[int, Register] = {}

    def _note_register(register: Register, where: str) -> None:
        other = by_index.setdefault(register.index, register)
        if other is not register:
            raise VerificationError(
                f"{function.name}: duplicate register index %{register.index} "
                f"({other!r} vs {register!r} in {where})"
            )

    for param in function.params:
        _note_register(param, "params")
    for block in function.blocks:
        for instr in block.instructions:
            if instr.result is not None:
                defined.add(id(instr.result))
                _note_register(instr.result, f"{block.label}/{instr.opcode}")

    for block in function.blocks:
        if block.label in seen_labels:
            _fail(function, block.label, "duplicate block label")
        seen_labels.add(block.label)

        if block.terminator is None:
            _fail(function, block.label, "block is not terminated")

        for instr in block.instructions:
            for operand in instr.operands:
                if isinstance(operand, Register) and id(operand) not in defined:
                    _fail(
                        function,
                        block.label,
                        f"use of undefined register {operand!r} in {instr.opcode}",
                    )
                if isinstance(operand, GlobalRef) and module is not None:
                    if operand.name not in module.globals:
                        _fail(function, block.label, f"unknown global @{operand.name}")
            _verify_instruction(function, block.label, instr)

        terminator = block.terminator
        for successor in terminator.successors:
            if id(successor) not in block_set:
                _fail(
                    function,
                    block.label,
                    f"terminator targets foreign block {successor.label!r}",
                )
        if isinstance(terminator, Ret):
            if function.return_type.is_void and terminator.value is not None:
                _fail(function, block.label, "void function returns a value")
            if not function.return_type.is_void and terminator.value is None:
                _fail(function, block.label, "non-void function returns nothing")
        elif isinstance(terminator, Branch):
            if not isinstance(terminator.cond.type, ScalarType):
                _fail(function, block.label, "branch condition must be scalar")

    _verify_region_markers(function)


def _verify_instruction(function: Function, label: str, instr) -> None:
    if isinstance(instr, BinOp):
        if instr.op not in ALL_BINARY_OPS:
            _fail(function, label, f"unknown binary op {instr.op!r}")
        if instr.dep_break not in (None, "induction", "reduction"):
            _fail(function, label, f"bad dep_break {instr.dep_break!r}")
        if instr.dep_break is not None and instr.break_operand not in (0, 1):
            _fail(function, label, "break_operand must be 0 or 1")
        if instr.result is None:
            _fail(function, label, "binop must produce a result")
    elif isinstance(instr, UnOp):
        if instr.op not in ("-", "!"):
            _fail(function, label, f"unknown unary op {instr.op!r}")
    elif isinstance(instr, Cast):
        if instr.target.is_void:
            _fail(function, label, "cannot cast to void")
    elif isinstance(instr, (Load, Store)):
        mem_type = instr.mem.type
        if isinstance(mem_type, ArrayType):
            if instr.index is None:
                _fail(function, label, "array access requires an index")
        elif isinstance(mem_type, ScalarType):
            if instr.index is not None:
                _fail(function, label, "scalar access must not have an index")
            if not isinstance(instr.mem, GlobalRef):
                _fail(function, label, "scalar load/store must target a global")
        if isinstance(instr, Load) and instr.result is None:
            _fail(function, label, "load must produce a result")
    elif isinstance(instr, Call):
        if not instr.callee:
            _fail(function, label, "call with empty callee")
    elif isinstance(instr, Alloca):
        if not isinstance(instr.array_type, ArrayType):
            _fail(function, label, "alloca requires an array type")
        if instr.array_type.element_count is None:
            _fail(function, label, "alloca requires fully-sized dimensions")
    elif isinstance(instr, (RegionEnter, RegionExit)):
        if instr.region_id < 0:
            _fail(function, label, "region marker with invalid id")


def _verify_region_markers(function: Function) -> None:
    """Check that region enter/exit markers appear only with valid ids.

    Full dynamic nesting discipline is enforced (and asserted) by the
    KremLib region stack at run time; statically we only validate ids.
    """
    for block in function.blocks:
        for instr in block.instructions:
            if isinstance(instr, (RegionEnter, RegionExit)) and instr.region_id < 0:
                _fail(function, block.label, "region marker with negative id")


def verify_module(module: Module) -> None:
    """Verify every function in the module; raises on the first violation."""
    if "main" not in module.functions:
        raise VerificationError("module has no main function")
    for function in module.functions.values():
        verify_function(function, module)
