"""IR functions and the per-function register allocator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.source import SourceSpan
from repro.ir.basicblock import BasicBlock
from repro.ir.types import ScalarType, Type
from repro.ir.values import Register


@dataclass(eq=False)
class Function:
    """A function: parameter registers plus a list of basic blocks.

    Blocks are kept in creation order; ``blocks[0]`` is the entry block.
    ``region_id`` is the static region representing the whole function body.
    """

    name: str
    return_type: ScalarType
    span: SourceSpan
    params: list[Register] = field(default_factory=list)
    blocks: list[BasicBlock] = field(default_factory=list)
    region_id: int = -1
    _next_register: int = 0
    _next_label: int = 0

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_register(self, type_: Type, name: str = "") -> Register:
        register = Register(index=self._next_register, type=type_, name=name)
        self._next_register += 1
        return register

    def new_block(self, hint: str = "bb") -> BasicBlock:
        block = BasicBlock(label=f"{hint}{self._next_label}")
        self._next_label += 1
        self.blocks.append(block)
        return block

    @property
    def num_registers(self) -> int:
        return self._next_register

    def block_by_label(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(f"no block {label!r} in {self.name}")

    def instructions(self):
        """Iterate over every instruction (not terminators) in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return f"<function {self.name} ({len(self.blocks)} blocks)>"
