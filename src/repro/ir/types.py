"""IR type system: scalar ``int``/``float``/``void`` plus array types."""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for IR types."""

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, ScalarType) and self.name != "void"

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, ScalarType) and self.name == "void"


@dataclass(frozen=True)
class ScalarType(Type):
    name: str  # 'int' | 'float' | 'void'

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(Type):
    """A (possibly multi-dimensional) array of scalars.

    ``dims`` may contain ``None`` in the leading position for array
    parameters whose extent is supplied by the caller.
    """

    element: ScalarType
    dims: tuple[int | None, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("ArrayType requires at least one dimension")
        if any(d is None for d in self.dims[1:]):
            raise ValueError("only the first dimension may be unsized")

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def element_count(self) -> int | None:
        """Total elements, or None if the first dimension is unsized."""
        count = 1
        for dim in self.dims:
            if dim is None:
                return None
            count *= dim
        return count

    def row_stride(self, axis: int) -> int:
        """Number of elements one step along ``axis`` advances.

        Only inner (sized) dimensions contribute, so an unsized first
        dimension is fine for any axis except the (never-needed) stride of a
        rank-0 step.
        """
        stride = 1
        for dim in self.dims[axis + 1 :]:
            assert dim is not None
            stride *= dim
        return stride

    def __str__(self) -> str:
        suffix = "".join(f"[{d if d is not None else ''}]" for d in self.dims)
        return f"{self.element}{suffix}"


INT = ScalarType("int")
FLOAT = ScalarType("float")
VOID = ScalarType("void")

_SCALARS = {"int": INT, "float": FLOAT, "void": VOID}


def scalar(name: str) -> ScalarType:
    """Intern a scalar type by name."""
    try:
        return _SCALARS[name]
    except KeyError:
        raise ValueError(f"unknown scalar type {name!r}") from None


def common_type(a: Type, b: Type) -> ScalarType:
    """Usual arithmetic conversion: float wins over int."""
    if not (a.is_scalar and b.is_scalar):
        raise ValueError(f"cannot combine non-scalar types {a} and {b}")
    if FLOAT in (a, b):
        return FLOAT
    return INT
