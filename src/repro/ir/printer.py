"""Textual IR dumps, for debugging and golden tests."""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Copy,
    Instruction,
    Jump,
    Load,
    RegionEnter,
    RegionExit,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import Module
from repro.ir.values import Constant, GlobalRef, Register, Value


def _value(value: Value | None) -> str:
    if value is None:
        return "<none>"
    if isinstance(value, Register):
        return f"%{value.index}" + (f".{value.name}" if value.name else "")
    if isinstance(value, Constant):
        return repr(value.value)
    if isinstance(value, GlobalRef):
        return f"@{value.name}"
    return repr(value)


def print_instruction(instr: Instruction) -> str:
    dest = f"{_value(instr.result)} = " if instr.result is not None else ""
    if isinstance(instr, BinOp):
        flags = f" !{instr.dep_break}[{instr.break_operand}]" if instr.dep_break else ""
        return f"{dest}{instr.op} {_value(instr.lhs)}, {_value(instr.rhs)}{flags}"
    if isinstance(instr, UnOp):
        return f"{dest}{instr.op} {_value(instr.operand)}"
    if isinstance(instr, Copy):
        return f"{dest}copy {_value(instr.operand)}"
    if isinstance(instr, Cast):
        return f"{dest}cast.{instr.target} {_value(instr.operand)}"
    if isinstance(instr, Load):
        index = f"[{_value(instr.index)}]" if instr.index is not None else ""
        return f"{dest}load {_value(instr.mem)}{index}"
    if isinstance(instr, Store):
        index = f"[{_value(instr.index)}]" if instr.index is not None else ""
        return f"store {_value(instr.mem)}{index}, {_value(instr.value)}"
    if isinstance(instr, Call):
        args = ", ".join(_value(a) for a in instr.args)
        marker = "builtin " if instr.is_builtin else ""
        return f"{dest}call {marker}{instr.callee}({args})"
    if isinstance(instr, Alloca):
        return f"{dest}alloca {instr.array_type}"
    if isinstance(instr, RegionEnter):
        return f"region_enter #{instr.region_id}"
    if isinstance(instr, RegionExit):
        return f"region_exit #{instr.region_id}"
    return f"{dest}{instr.opcode}"


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.label}:"]
    for instr in block.instructions:
        lines.append(f"  {print_instruction(instr)}")
    term = block.terminator
    if isinstance(term, Jump):
        lines.append(f"  jump {term.target.label}")
    elif isinstance(term, Branch):
        lines.append(
            f"  branch {_value(term.cond)} ? {term.then_block.label} : {term.else_block.label}"
        )
    elif isinstance(term, Ret):
        lines.append(f"  ret {_value(term.value)}" if term.value else "  ret")
    else:
        lines.append("  <unterminated>")
    return "\n".join(lines)


def print_function(function: Function) -> str:
    params = ", ".join(f"{_value(p)}: {p.type}" for p in function.params)
    lines = [f"func {function.name}({params}) -> {function.return_type} {{"]
    for block in function.blocks:
        lines.append(print_block(block))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    lines = [f"module {module.name}"]
    for global_var in module.globals.values():
        init = f" = {global_var.init}" if global_var.init is not None else ""
        lines.append(f"global @{global_var.name}: {global_var.type}{init}")
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines)
