"""Register-based intermediate representation for the Kremlin reproduction.

This package plays the role LLVM IR plays in the paper: a typed, basic-block
IR that the front end lowers MiniC into, that the static analyses (dominators,
loops, control dependence, induction/reduction detection) run over, that the
instrumentation pass annotates, and that the interpreter executes.

Design notes
------------
* **Virtual registers, not SSA.** Kremlin's shadow *register table* tracks the
  availability time of the value currently in each register, which already
  ignores anti- and output-dependencies — the property the paper obtains from
  LLVM's SSA form. Using one virtual register per source variable keeps
  lowering and interpretation simple while preserving the true-dependence-only
  semantics the analysis needs.
* **Explicit index arithmetic.** Array accesses are lowered to explicit
  multiply/add address computation followed by a single-index ``load`` /
  ``store``, so addressing work participates in critical-path analysis just
  as compiled code's address arithmetic would.
* **Region markers.** ``region_enter`` / ``region_exit`` pseudo-instructions
  (zero cost) delimit function, loop, and loop-body regions; they are inserted
  by lowering and consumed by the KremLib runtime.
"""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Copy,
    Instruction,
    Jump,
    Load,
    RegionEnter,
    RegionExit,
    Ret,
    Store,
    Terminator,
    UnOp,
)
from repro.ir.module import GlobalVar, Module
from repro.ir.printer import print_function, print_module
from repro.ir.types import FLOAT, INT, VOID, ArrayType, ScalarType, Type
from repro.ir.values import Constant, GlobalRef, Register, Value
from repro.ir.verifier import VerificationError, verify_module

__all__ = [
    "Alloca",
    "ArrayType",
    "BasicBlock",
    "BinOp",
    "Branch",
    "Call",
    "Cast",
    "Copy",
    "Constant",
    "FLOAT",
    "Function",
    "GlobalRef",
    "GlobalVar",
    "INT",
    "IRBuilder",
    "Instruction",
    "Jump",
    "Load",
    "Module",
    "RegionEnter",
    "RegionExit",
    "Register",
    "Ret",
    "ScalarType",
    "Store",
    "Terminator",
    "Type",
    "UnOp",
    "VOID",
    "Value",
    "VerificationError",
    "print_function",
    "print_module",
    "verify_module",
]
