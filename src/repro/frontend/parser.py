"""Recursive-descent parser for MiniC with C-style operator precedence."""

from __future__ import annotations

from repro.frontend.ast_nodes import (
    AssignStmt,
    BinaryExpr,
    BlockStmt,
    BreakStmt,
    CallExpr,
    CastExpr,
    CondExpr,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FuncDecl,
    IfStmt,
    IndexExpr,
    IntLiteral,
    NameExpr,
    Param,
    Program,
    ReturnStmt,
    Stmt,
    StringLiteral,
    TypeName,
    UnaryExpr,
    VarDecl,
    WhileStmt,
)
from repro.frontend.errors import ParseError
from repro.frontend.lexer import Lexer
from repro.frontend.source import SourceFile, SourceSpan
from repro.frontend.tokens import Token, TokenKind

# Binary operator precedence, higher binds tighter. Mirrors C.
_BINARY_PRECEDENCE: dict[TokenKind, tuple[int, str]] = {
    TokenKind.PIPE_PIPE: (1, "||"),
    TokenKind.AMP_AMP: (2, "&&"),
    TokenKind.PIPE: (3, "|"),
    TokenKind.CARET: (4, "^"),
    TokenKind.AMP: (5, "&"),
    TokenKind.EQ: (6, "=="),
    TokenKind.NE: (6, "!="),
    TokenKind.LT: (7, "<"),
    TokenKind.GT: (7, ">"),
    TokenKind.LE: (7, "<="),
    TokenKind.GE: (7, ">="),
    TokenKind.LSHIFT: (8, "<<"),
    TokenKind.RSHIFT: (8, ">>"),
    TokenKind.PLUS: (9, "+"),
    TokenKind.MINUS: (9, "-"),
    TokenKind.STAR: (10, "*"),
    TokenKind.SLASH: (10, "/"),
    TokenKind.PERCENT: (10, "%"),
}

_TYPE_KEYWORDS = (TokenKind.KW_INT, TokenKind.KW_FLOAT, TokenKind.KW_VOID)

_ASSIGN_OPS: dict[TokenKind, str] = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
}


class Parser:
    """Parses a token stream into a :class:`Program`."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.tokens = Lexer(source).tokens()
        self.pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, *kinds: TokenKind) -> bool:
        return self.current.kind in kinds

    def _accept(self, *kinds: TokenKind) -> Token | None:
        if self._check(*kinds):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        if self.current.kind is kind:
            return self._advance()
        where = f" in {context}" if context else ""
        raise ParseError(
            f"expected {kind.value!r}{where}, found {self.current}",
            self.current.span,
        )

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_program(self) -> Program:
        globals_: list[VarDecl] = []
        functions: list[FuncDecl] = []
        start_span = self.current.span
        while not self._check(TokenKind.EOF):
            if not self._check(*_TYPE_KEYWORDS):
                raise ParseError(
                    f"expected a declaration, found {self.current}",
                    self.current.span,
                )
            # type ident '(' → function; anything else → global variable(s).
            if (
                self._peek(1).kind is TokenKind.IDENT
                and self._peek(2).kind is TokenKind.LPAREN
            ):
                functions.append(self._parse_function())
            else:
                globals_.extend(self._parse_var_decl_list())
        end_span = self.tokens[-1].span
        return Program(
            span=start_span.merge(end_span),
            globals=globals_,
            functions=functions,
            filename=self.source.name,
        )

    def _parse_base_type(self) -> tuple[str, Token]:
        token = self._advance()
        if token.kind is TokenKind.KW_INT:
            return "int", token
        if token.kind is TokenKind.KW_FLOAT:
            return "float", token
        if token.kind is TokenKind.KW_VOID:
            return "void", token
        raise ParseError(f"expected a type, found {token}", token.span)

    def _parse_array_dims(self, allow_unsized_first: bool = False) -> tuple[int | None, ...]:
        dims: list[int | None] = []
        while self._accept(TokenKind.LBRACKET):
            if self._check(TokenKind.RBRACKET):
                if not (allow_unsized_first and not dims):
                    raise ParseError(
                        "only the first parameter dimension may be unsized",
                        self.current.span,
                    )
                dims.append(None)
            else:
                size_token = self._expect(TokenKind.INT_LITERAL, "array dimension")
                size = int(size_token.value)  # type: ignore[arg-type]
                if size <= 0:
                    raise ParseError("array dimension must be positive", size_token.span)
                dims.append(size)
            self._expect(TokenKind.RBRACKET, "array dimension")
        return tuple(dims)

    def _parse_function(self) -> FuncDecl:
        base, type_token = self._parse_base_type()
        name_token = self._expect(TokenKind.IDENT, "function declaration")
        self._expect(TokenKind.LPAREN, "parameter list")
        params: list[Param] = []
        if not self._check(TokenKind.RPAREN):
            while True:
                params.append(self._parse_param())
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "parameter list")
        body = self._parse_block()
        return FuncDecl(
            span=type_token.span.merge(body.span),
            name=str(name_token.value),
            return_type=TypeName(base),
            params=params,
            body=body,
        )

    def _parse_param(self) -> Param:
        if self._check(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
            # C-style `f(void)`: consume and treat as empty — handled by caller
            # never reaching here because caller checks RPAREN first; keep for
            # robustness with `(void)` written explicitly.
            token = self._advance()
            raise ParseError("'void' parameter lists are written as '()'", token.span)
        base, type_token = self._parse_base_type()
        if base == "void":
            raise ParseError("parameters cannot have type 'void'", type_token.span)
        name_token = self._expect(TokenKind.IDENT, "parameter")
        dims = self._parse_array_dims(allow_unsized_first=True)
        return Param(
            span=type_token.span.merge(name_token.span),
            name=str(name_token.value),
            type=TypeName(base, dims),
        )

    def _parse_var_decl_list(self) -> list[VarDecl]:
        """Parse ``type name [dims] [= init] (, name [dims] [= init])* ;``."""
        base, type_token = self._parse_base_type()
        if base == "void":
            raise ParseError("variables cannot have type 'void'", type_token.span)
        decls: list[VarDecl] = []
        while True:
            name_token = self._expect(TokenKind.IDENT, "variable declaration")
            dims = self._parse_array_dims()
            init: Expr | None = None
            if self._accept(TokenKind.ASSIGN):
                if dims:
                    raise ParseError(
                        "array initializers are not supported; assign in code",
                        self.current.span,
                    )
                init = self._parse_expr()
            end_span = init.span if init is not None else name_token.span
            decls.append(
                VarDecl(
                    span=type_token.span.merge(end_span),
                    name=str(name_token.value),
                    type=TypeName(base, dims),
                    init=init,
                )
            )
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.SEMICOLON, "variable declaration")
        return decls

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> BlockStmt:
        open_token = self._expect(TokenKind.LBRACE, "block")
        body: list[Stmt] = []
        while not self._check(TokenKind.RBRACE, TokenKind.EOF):
            body.append(self._parse_stmt())
        close_token = self._expect(TokenKind.RBRACE, "block")
        return BlockStmt(span=open_token.span.merge(close_token.span), body=body)

    def _parse_stmt(self) -> Stmt:
        kind = self.current.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind in (TokenKind.KW_INT, TokenKind.KW_FLOAT):
            decls = self._parse_var_decl_list()
            span = decls[0].span.merge(decls[-1].span)
            return DeclStmt(span=span, decls=decls)
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if kind is TokenKind.KW_BREAK:
            token = self._advance()
            self._expect(TokenKind.SEMICOLON, "break")
            return BreakStmt(span=token.span)
        if kind is TokenKind.KW_CONTINUE:
            token = self._advance()
            self._expect(TokenKind.SEMICOLON, "continue")
            return ContinueStmt(span=token.span)
        if kind is TokenKind.SEMICOLON:
            token = self._advance()
            return BlockStmt(span=token.span, body=[])
        stmt = self._parse_simple_stmt()
        self._expect(TokenKind.SEMICOLON, "statement")
        return stmt

    def _parse_simple_stmt(self) -> Stmt:
        """An assignment, increment/decrement, or expression statement,
        without the trailing semicolon (shared by `for` headers)."""
        expr = self._parse_expr()
        op_token = self._accept(*_ASSIGN_OPS.keys())
        if op_token is not None:
            if not isinstance(expr, (NameExpr, IndexExpr)):
                raise ParseError("assignment target must be a variable or element", expr.span)
            value = self._parse_expr()
            return AssignStmt(
                span=expr.span.merge(value.span),
                target=expr,
                op=_ASSIGN_OPS[op_token.kind],
                value=value,
            )
        incdec = self._accept(TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS)
        if incdec is not None:
            if not isinstance(expr, (NameExpr, IndexExpr)):
                raise ParseError("++/-- target must be a variable or element", expr.span)
            one = IntLiteral(span=incdec.span, value=1)
            op = "+=" if incdec.kind is TokenKind.PLUS_PLUS else "-="
            return AssignStmt(
                span=expr.span.merge(incdec.span), target=expr, op=op, value=one
            )
        return ExprStmt(span=expr.span, expr=expr)

    def _parse_if(self) -> IfStmt:
        if_token = self._advance()
        self._expect(TokenKind.LPAREN, "if condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "if condition")
        then_body = self._parse_stmt()
        else_body: Stmt | None = None
        if self._accept(TokenKind.KW_ELSE):
            else_body = self._parse_stmt()
        end = else_body.span if else_body is not None else then_body.span
        return IfStmt(
            span=if_token.span.merge(end),
            cond=cond,
            then_body=then_body,
            else_body=else_body,
        )

    def _parse_while(self) -> WhileStmt:
        while_token = self._advance()
        self._expect(TokenKind.LPAREN, "while condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "while condition")
        body = self._parse_stmt()
        return WhileStmt(span=while_token.span.merge(body.span), cond=cond, body=body)

    def _parse_do_while(self) -> DoWhileStmt:
        do_token = self._advance()
        body = self._parse_stmt()
        self._expect(TokenKind.KW_WHILE, "do-while")
        self._expect(TokenKind.LPAREN, "do-while condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "do-while condition")
        semi = self._expect(TokenKind.SEMICOLON, "do-while")
        return DoWhileStmt(span=do_token.span.merge(semi.span), body=body, cond=cond)

    def _parse_for(self) -> ForStmt:
        for_token = self._advance()
        self._expect(TokenKind.LPAREN, "for header")

        init: Stmt | None = None
        if not self._check(TokenKind.SEMICOLON):
            if self._check(TokenKind.KW_INT, TokenKind.KW_FLOAT):
                decls = self._parse_var_decl_list()  # consumes the semicolon
                init = DeclStmt(span=decls[0].span.merge(decls[-1].span), decls=decls)
            else:
                init = self._parse_simple_stmt()
                self._expect(TokenKind.SEMICOLON, "for header")
        else:
            self._advance()

        cond: Expr | None = None
        if not self._check(TokenKind.SEMICOLON):
            cond = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "for header")

        step: Stmt | None = None
        if not self._check(TokenKind.RPAREN):
            step = self._parse_simple_stmt()
        self._expect(TokenKind.RPAREN, "for header")

        body = self._parse_stmt()
        return ForStmt(
            span=for_token.span.merge(body.span),
            init=init,
            cond=cond,
            step=step,
            body=body,
        )

    def _parse_return(self) -> ReturnStmt:
        return_token = self._advance()
        value: Expr | None = None
        if not self._check(TokenKind.SEMICOLON):
            value = self._parse_expr()
        semi = self._expect(TokenKind.SEMICOLON, "return")
        return ReturnStmt(span=return_token.span.merge(semi.span), value=value)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self._accept(TokenKind.QUESTION):
            then = self._parse_expr()
            self._expect(TokenKind.COLON, "conditional expression")
            otherwise = self._parse_ternary()
            return CondExpr(
                span=cond.span.merge(otherwise.span),
                cond=cond,
                then=then,
                otherwise=otherwise,
            )
        return cond

    def _parse_binary(self, min_precedence: int) -> Expr:
        left = self._parse_unary()
        while True:
            entry = _BINARY_PRECEDENCE.get(self.current.kind)
            if entry is None or entry[0] < min_precedence:
                return left
            precedence, op = entry
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = BinaryExpr(
                span=left.span.merge(right.span), op=op, left=left, right=right
            )

    def _parse_unary(self) -> Expr:
        token = self.current
        if token.kind in (TokenKind.MINUS, TokenKind.PLUS, TokenKind.BANG):
            self._advance()
            operand = self._parse_unary()
            op = {"-": "-", "+": "+", "!": "!"}[token.kind.value]
            if op == "+":
                return operand
            return UnaryExpr(span=token.span.merge(operand.span), op=op, operand=operand)
        # Cast: '(' 'int'|'float' ')' unary
        if (
            token.kind is TokenKind.LPAREN
            and self._peek(1).kind in (TokenKind.KW_INT, TokenKind.KW_FLOAT)
            and self._peek(2).kind is TokenKind.RPAREN
        ):
            self._advance()
            type_token = self._advance()
            self._advance()
            operand = self._parse_unary()
            target = "int" if type_token.kind is TokenKind.KW_INT else "float"
            return CastExpr(
                span=token.span.merge(operand.span), target=target, operand=operand
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._check(TokenKind.LBRACKET):
            if not isinstance(expr, (NameExpr, IndexExpr)):
                raise ParseError("only named arrays can be indexed", expr.span)
            self._advance()
            index = self._parse_expr()
            close = self._expect(TokenKind.RBRACKET, "index expression")
            if isinstance(expr, NameExpr):
                expr = IndexExpr(
                    span=expr.span.merge(close.span), name=expr.name, indices=[index]
                )
            else:
                expr = IndexExpr(
                    span=expr.span.merge(close.span),
                    name=expr.name,
                    indices=[*expr.indices, index],
                )
        return expr

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return IntLiteral(span=token.span, value=int(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            return FloatLiteral(span=token.span, value=float(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.STRING_LITERAL:
            self._advance()
            return StringLiteral(span=token.span, value=str(token.value))
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = str(token.value)
            if self._check(TokenKind.LPAREN):
                self._advance()
                args: list[Expr] = []
                if not self._check(TokenKind.RPAREN):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(TokenKind.COMMA):
                            break
                close = self._expect(TokenKind.RPAREN, "call")
                return CallExpr(span=token.span.merge(close.span), callee=name, args=args)
            return NameExpr(span=token.span, name=name)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "parenthesized expression")
            return expr
        raise ParseError(f"expected an expression, found {token}", token.span)


def parse_program(text: str, filename: str = "<input>") -> Program:
    """Parse MiniC source text into a :class:`Program`."""
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    # Lexing is eager in the Parser constructor, so the "lex" span wraps
    # construction and "parse" wraps the grammar walk proper.
    with tracer.span("lex"):
        parser = Parser(SourceFile(filename, text))
    with tracer.span("parse"):
        return parser.parse_program()
