"""MiniC front end: lexer, parser, and AST for the Kremlin reproduction.

MiniC is a small C-like language covering the constructs the Kremlin paper's
benchmarks exercise: scalar ``int``/``float`` variables, fixed-size one- and
two-dimensional arrays, functions, ``if``/``while``/``for`` control flow, and
calls (including a deterministic math/builtin library).

The public entry point is :func:`parse_program`, which turns source text into
a :class:`~repro.frontend.ast_nodes.Program`.
"""

from repro.frontend.ast_nodes import Program
from repro.frontend.errors import LexError, MiniCError, ParseError
from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_program
from repro.frontend.source import SourceFile, SourceLocation, SourceSpan
from repro.frontend.tokens import Token, TokenKind

__all__ = [
    "Lexer",
    "LexError",
    "MiniCError",
    "ParseError",
    "Parser",
    "Program",
    "SourceFile",
    "SourceLocation",
    "SourceSpan",
    "Token",
    "TokenKind",
    "parse_program",
    "tokenize",
]
