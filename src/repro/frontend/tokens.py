"""Token definitions for the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.source import SourceSpan


class TokenKind(enum.Enum):
    """Every token kind MiniC recognizes."""

    # Literals and identifiers.
    INT_LITERAL = "int literal"
    FLOAT_LITERAL = "float literal"
    STRING_LITERAL = "string literal"
    IDENT = "identifier"

    # Keywords.
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"

    # Operators.
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AMP_AMP = "&&"
    PIPE_PIPE = "||"
    BANG = "!"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    LSHIFT = "<<"
    RSHIFT = ">>"
    QUESTION = "?"
    COLON = ":"

    EOF = "<eof>"


KEYWORDS: dict[str, TokenKind] = {
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_FLOAT,  # treated as float in MiniC
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
}

# Multi-character operators, longest first so maximal munch works by scanning
# this list in order.
MULTI_CHAR_OPERATORS: list[tuple[str, TokenKind]] = [
    ("<<", TokenKind.LSHIFT),
    (">>", TokenKind.RSHIFT),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.AMP_AMP),
    ("||", TokenKind.PIPE_PIPE),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
]

SINGLE_CHAR_OPERATORS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "=": TokenKind.ASSIGN,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.BANG,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token with its source span and literal value.

    ``value`` is an ``int`` for INT_LITERAL, ``float`` for FLOAT_LITERAL,
    the string contents for STRING_LITERAL, the identifier text for IDENT,
    and ``None`` otherwise.
    """

    kind: TokenKind
    text: str
    span: SourceSpan
    value: int | float | str | None = None

    def is_kind(self, *kinds: TokenKind) -> bool:
        return self.kind in kinds

    def __str__(self) -> str:
        if self.kind in (TokenKind.INT_LITERAL, TokenKind.FLOAT_LITERAL):
            return f"{self.kind.name}({self.value})"
        if self.kind is TokenKind.IDENT:
            return f"IDENT({self.text})"
        return self.kind.name
