"""Diagnostic exceptions raised by the MiniC front end."""

from __future__ import annotations

from repro.frontend.source import SourceFile, SourceSpan


class MiniCError(Exception):
    """Base class for all front-end diagnostics.

    Carries an optional :class:`SourceSpan`; :meth:`render` produces a
    human-readable message with a caret line when the source is available.
    """

    def __init__(self, message: str, span: SourceSpan | None = None):
        super().__init__(message)
        self.message = message
        self.span = span

    def render(self, source: SourceFile | None = None) -> str:
        if self.span is None:
            return f"error: {self.message}"
        header = f"{self.span.filename}:{self.span.start}: error: {self.message}"
        if source is None:
            return header
        try:
            line = source.line_text(self.span.start.line)
        except ValueError:
            return header
        caret = " " * (self.span.start.column - 1) + "^"
        return f"{header}\n  {line}\n  {caret}"

    def __str__(self) -> str:
        if self.span is None:
            return self.message
        return f"{self.span.filename}:{self.span.start}: {self.message}"


class LexError(MiniCError):
    """Raised when the lexer encounters malformed input."""


class ParseError(MiniCError):
    """Raised when the parser encounters unexpected token structure."""


class SemanticError(MiniCError):
    """Raised during lowering when the program is ill-formed.

    Examples: use of an undeclared variable, calling an unknown function,
    indexing a scalar, or arity mismatches at call sites.
    """
