"""Source files, locations, and spans for MiniC diagnostics.

Every AST node and (transitively) every IR region carries a
:class:`SourceSpan` so that planner output can point at concrete source lines,
matching the ``imageBlur.c (49-58)`` style of Kremlin's user interface
(Figure 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceLocation:
    """A single point in a source file (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __lt__(self, other: "SourceLocation") -> bool:
        return (self.line, self.column) < (other.line, other.column)

    def __le__(self, other: "SourceLocation") -> bool:
        return (self.line, self.column) <= (other.line, other.column)


@dataclass(frozen=True)
class SourceSpan:
    """A contiguous range of source text, used to label code regions.

    Spans are closed on both ends: ``lines`` covers ``start.line`` through
    ``end.line`` inclusive, mirroring how Kremlin reports region extents.
    """

    start: SourceLocation
    end: SourceLocation
    filename: str = "<input>"

    @staticmethod
    def point(line: int, column: int, filename: str = "<input>") -> "SourceSpan":
        loc = SourceLocation(line, column)
        return SourceSpan(loc, loc, filename)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest span covering both ``self`` and ``other``."""
        start = self.start if self.start <= other.start else other.start
        end = self.end if other.end <= self.end else other.end
        return SourceSpan(start, end, self.filename)

    @property
    def line_range(self) -> tuple[int, int]:
        return (self.start.line, self.end.line)

    def __str__(self) -> str:
        if self.start.line == self.end.line:
            return f"{self.filename} ({self.start.line})"
        return f"{self.filename} ({self.start.line}-{self.end.line})"


@dataclass
class SourceFile:
    """Source text plus precomputed line offsets for location lookup."""

    name: str
    text: str
    _line_starts: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for index, char in enumerate(self.text):
            if char == "\n":
                starts.append(index + 1)
        self._line_starts = starts

    @property
    def num_lines(self) -> int:
        return len(self._line_starts)

    def location_of(self, offset: int) -> SourceLocation:
        """Map a character offset to a 1-based line/column location."""
        if offset < 0 or offset > len(self.text):
            raise ValueError(f"offset {offset} out of range for {self.name}")
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return SourceLocation(line=lo + 1, column=offset - self._line_starts[lo] + 1)

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line, without its newline."""
        if line < 1 or line > self.num_lines:
            raise ValueError(f"line {line} out of range for {self.name}")
        start = self._line_starts[line - 1]
        end = self._line_starts[line] - 1 if line < self.num_lines else len(self.text)
        return self.text[start:end]

    def span(self, start_offset: int, end_offset: int) -> SourceSpan:
        return SourceSpan(
            self.location_of(start_offset),
            self.location_of(max(start_offset, end_offset - 1)) if end_offset > start_offset else self.location_of(start_offset),
            self.name,
        )
