"""Abstract syntax tree for MiniC.

The AST is intentionally small: the Kremlin benchmarks are numeric kernels,
so MiniC needs scalars, fixed-size arrays, arithmetic, calls, and structured
control flow — nothing more. Every node carries a :class:`SourceSpan`; loop
spans become the ``file (start-end)`` labels in planner output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.source import SourceSpan

# ----------------------------------------------------------------------
# Types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TypeName:
    """A declared type: ``base`` is 'int', 'float', or 'void'; ``dims`` lists
    array dimensions (``None`` for an unsized leading parameter dimension,
    as in ``float a[][64]``)."""

    base: str
    dims: tuple[int | None, ...] = ()

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def is_void(self) -> bool:
        return self.base == "void" and not self.dims

    def __str__(self) -> str:
        suffix = "".join(f"[{d if d is not None else ''}]" for d in self.dims)
        return f"{self.base}{suffix}"


# ----------------------------------------------------------------------
# Base nodes
# ----------------------------------------------------------------------


@dataclass
class Node:
    span: SourceSpan


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class Stmt(Node):
    """Base class for statements."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class FloatLiteral(Expr):
    value: float


@dataclass
class StringLiteral(Expr):
    """Only valid as the first argument of the ``print`` builtin."""

    value: str


@dataclass
class NameExpr(Expr):
    name: str


@dataclass
class IndexExpr(Expr):
    """``base[i]`` or ``base[i][j]``; ``base`` is always a plain name in
    MiniC (arrays are not first-class values)."""

    name: str
    indices: list[Expr]


@dataclass
class UnaryExpr(Expr):
    op: str  # '-', '!', '~'(unsupported), '+'
    operand: Expr


@dataclass
class BinaryExpr(Expr):
    op: str  # '+','-','*','/','%','<','>','<=','>=','==','!=','&&','||','&','|','^','<<','>>'
    left: Expr
    right: Expr


@dataclass
class CallExpr(Expr):
    callee: str
    args: list[Expr]


@dataclass
class CondExpr(Expr):
    """Ternary ``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class CastExpr(Expr):
    """Explicit cast, ``(int) e`` or ``(float) e``."""

    target: str  # 'int' or 'float'
    operand: Expr


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class VarDecl(Node):
    """A variable declaration, local or global. ``init`` may be None."""

    name: str
    type: TypeName
    init: Expr | None = None


@dataclass
class DeclStmt(Stmt):
    decls: list[VarDecl] = field(default_factory=list)


@dataclass
class AssignStmt(Stmt):
    """``target op value`` where op is '=', '+=', '-=', '*=', or '/='.

    ``i++`` / ``i--`` are desugared by the parser to ``i += 1`` / ``i -= 1``.
    """

    target: NameExpr | IndexExpr
    op: str
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class BlockStmt(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: Stmt
    else_body: Stmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class ForStmt(Stmt):
    """C-style ``for``. ``init`` and ``step`` are optional simple statements
    (declaration, assignment, or expression)."""

    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: Stmt


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    type: TypeName


@dataclass
class FuncDecl(Node):
    name: str
    return_type: TypeName
    params: list[Param]
    body: BlockStmt


@dataclass
class Program(Node):
    """A whole translation unit: global variables plus functions."""

    globals: list[VarDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
    filename: str = "<input>"

    def function(self, name: str) -> FuncDecl:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    @property
    def function_names(self) -> list[str]:
        return [func.name for func in self.functions]


# ----------------------------------------------------------------------
# Utility walkers
# ----------------------------------------------------------------------


def walk_expr(expr: Expr):
    """Yield ``expr`` and all of its sub-expressions, preorder."""
    yield expr
    if isinstance(expr, UnaryExpr):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, BinaryExpr):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, CallExpr):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, IndexExpr):
        for index in expr.indices:
            yield from walk_expr(index)
    elif isinstance(expr, CondExpr):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.otherwise)
    elif isinstance(expr, CastExpr):
        yield from walk_expr(expr.operand)


def walk_stmts(stmt: Stmt):
    """Yield ``stmt`` and all nested statements, preorder."""
    yield stmt
    if isinstance(stmt, BlockStmt):
        for child in stmt.body:
            yield from walk_stmts(child)
    elif isinstance(stmt, IfStmt):
        yield from walk_stmts(stmt.then_body)
        if stmt.else_body is not None:
            yield from walk_stmts(stmt.else_body)
    elif isinstance(stmt, WhileStmt):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, DoWhileStmt):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, ForStmt):
        if stmt.init is not None:
            yield from walk_stmts(stmt.init)
        if stmt.step is not None:
            yield from walk_stmts(stmt.step)
        yield from walk_stmts(stmt.body)
