"""Hand-written lexer for MiniC.

Supports ``//`` and ``/* */`` comments, decimal and hexadecimal integer
literals, floating literals with optional exponents, string literals (used
only by the ``print`` builtin), and the operator set in
:mod:`repro.frontend.tokens`.
"""

from __future__ import annotations

from repro.frontend.errors import LexError
from repro.frontend.source import SourceFile
from repro.frontend.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"', "0": "\0"}


class Lexer:
    """Converts MiniC source text into a token stream."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0

    def tokens(self) -> list[Token]:
        """Lex the whole input, ending with a single EOF token."""
        out: list[Token] = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.kind is TokenKind.EOF:
                return out

    # ------------------------------------------------------------------
    # Scanning helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments; raise on unterminated comments."""
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self.pos += 1
            elif char == "/" and self._peek(1) == "*":
                start = self.pos
                self.pos += 2
                while self.pos < len(self.text) and not (
                    self.text[self.pos] == "*" and self._peek(1) == "/"
                ):
                    self.pos += 1
                if self.pos >= len(self.text):
                    raise LexError(
                        "unterminated block comment",
                        self.source.span(start, start + 2),
                    )
                self.pos += 2
            else:
                return

    def _make(self, kind: TokenKind, start: int, value=None) -> Token:
        text = self.text[start : self.pos]
        return Token(kind, text, self.source.span(start, self.pos), value)

    # ------------------------------------------------------------------
    # Token producers
    # ------------------------------------------------------------------

    def next_token(self) -> Token:
        self._skip_trivia()
        start = self.pos
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self.source.span(max(0, start - 1), start))

        char = self.text[self.pos]
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(start)
        if char.isalpha() or char == "_":
            return self._lex_ident(start)
        if char == '"':
            return self._lex_string(start)

        two = self.text[self.pos : self.pos + 2]
        for op_text, kind in MULTI_CHAR_OPERATORS:
            if two == op_text:
                self.pos += 2
                return self._make(kind, start)
        kind = SINGLE_CHAR_OPERATORS.get(char)
        if kind is not None:
            self.pos += 1
            return self._make(kind, start)

        raise LexError(
            f"unexpected character {char!r}", self.source.span(start, start + 1)
        )

    def _lex_number(self, start: int) -> Token:
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self.pos += 2
            digits_start = self.pos
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self.pos += 1
            if self.pos == digits_start:
                raise LexError(
                    "hexadecimal literal needs digits",
                    self.source.span(start, self.pos),
                )
            return self._make(
                TokenKind.INT_LITERAL, start, int(self.text[start : self.pos], 16)
            )

        is_float = False
        while self._peek().isdigit():
            self.pos += 1
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self.pos += 1
            while self._peek().isdigit():
                self.pos += 1
        if self._peek() in ("e", "E"):
            lookahead = 1
            if self._peek(1) in ("+", "-"):
                lookahead = 2
            if self._peek(lookahead).isdigit():
                is_float = True
                self.pos += lookahead
                while self._peek().isdigit():
                    self.pos += 1
        # Swallow C float-suffixes so ported kernels lex unchanged.
        if self._peek() in ("f", "F") and is_float:
            text = self.text[start : self.pos]
            self.pos += 1
            return self._make(TokenKind.FLOAT_LITERAL, start, float(text))

        text = self.text[start : self.pos]
        if is_float:
            return self._make(TokenKind.FLOAT_LITERAL, start, float(text))
        return self._make(TokenKind.INT_LITERAL, start, int(text, 10))

    def _lex_ident(self, start: int) -> Token:
        while self._peek().isalnum() or self._peek() == "_":
            self.pos += 1
        text = self.text[start : self.pos]
        keyword = KEYWORDS.get(text)
        if keyword is not None:
            return self._make(keyword, start)
        return self._make(TokenKind.IDENT, start, text)

    def _lex_string(self, start: int) -> Token:
        self.pos += 1  # opening quote
        chars: list[str] = []
        while True:
            char = self._peek()
            if char == "" or char == "\n":
                raise LexError(
                    "unterminated string literal", self.source.span(start, self.pos)
                )
            if char == '"':
                self.pos += 1
                return self._make(TokenKind.STRING_LITERAL, start, "".join(chars))
            if char == "\\":
                escape = self._peek(1)
                if escape not in _ESCAPES:
                    raise LexError(
                        f"unknown escape sequence '\\{escape}'",
                        self.source.span(self.pos, self.pos + 2),
                    )
                chars.append(_ESCAPES[escape])
                self.pos += 2
            else:
                chars.append(char)
                self.pos += 1


def tokenize(text: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``text`` into a token list ending in EOF."""
    return Lexer(SourceFile(filename, text)).tokens()
