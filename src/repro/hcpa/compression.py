"""Trace-size accounting for the dictionary compressor (paper §4.4).

The paper reports raw NPB-W parallelism profiles of 750 MB–54 GB shrinking
to 5–774 KB — a ~119,000× average reduction. We model record sizes the same
way: a raw trace stores one fixed-size summary per dynamic region, while the
compressed form stores one record per *character* (whose children list is
variable length) plus the root character.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hcpa.summaries import ParallelismProfile

try:  # numpy is a declared dependency, but stay importable without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar path
    _np = None

#: Bytes per raw dynamic-region summary: static id (4), work (8), cp (8),
#: parent instance link (8), plus 4 bytes of framing.
RAW_RECORD_BYTES = 32

#: dictionaries below this many characters count child pairs with the
#: plain generator sum; above it, one int64 array reduction
VECTOR_MIN_ENTRIES = 256

#: Fixed part of a dictionary record: char (4), static id (4), work (8),
#: cp (8), child-list length (4).
DICT_RECORD_FIXED_BYTES = 28

#: Bytes per (child char, count) pair in a dictionary record.
DICT_CHILD_PAIR_BYTES = 8


@dataclass(frozen=True)
class CompressionStats:
    """Raw vs compressed profile sizes for one run."""

    dynamic_regions: int
    dictionary_entries: int
    raw_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes

    def __str__(self) -> str:
        return (
            f"{self.dynamic_regions} dynamic regions "
            f"({_human(self.raw_bytes)}) -> {self.dictionary_entries} "
            f"dictionary entries ({_human(self.compressed_bytes)}), "
            f"{self.ratio:,.0f}x"
        )


def compression_stats(profile: ParallelismProfile) -> CompressionStats:
    dictionary = profile.dictionary
    entries = dictionary.entries
    if _np is not None and len(entries) >= VECTOR_MIN_ENTRIES:
        child_pairs = int(
            _np.fromiter(
                (len(entry.children) for entry in entries),
                _np.int64,
                count=len(entries),
            ).sum()
        )
    else:
        child_pairs = sum(len(entry.children) for entry in entries)
    compressed = (
        4  # root character
        + DICT_RECORD_FIXED_BYTES * len(entries)
        + DICT_CHILD_PAIR_BYTES * child_pairs
    )
    return CompressionStats(
        dynamic_regions=dictionary.raw_records,
        dictionary_entries=len(dictionary.entries),
        raw_bytes=dictionary.raw_records * RAW_RECORD_BYTES,
        compressed_bytes=compressed,
    )


def record_compression_metrics(profile: ParallelismProfile) -> None:
    """Feed the compressor's effectiveness into the metrics registry.

    The dictionary hit ratio falls out of the interning bookkeeping:
    every dynamic region exit interns one raw record, and only misses
    grow the entry list, so ``hits = raw_records - entries``.
    """
    from repro.obs.metrics import get_metrics, metrics_enabled

    if not metrics_enabled():
        return
    dictionary = profile.dictionary
    registry = get_metrics()
    registry.counter("compress.raw_records").inc(dictionary.raw_records)
    registry.counter("compress.dictionary_entries").inc(
        len(dictionary.entries)
    )
    registry.counter("compress.hits").inc(
        dictionary.raw_records - len(dictionary.entries)
    )
    stats = compression_stats(profile)
    registry.gauge("compress.ratio").set(round(stats.ratio, 4))


def _human(size: int) -> str:
    value = float(size)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:,.1f} {unit}"
        value /= 1024
    return f"{value:,.1f} GB"
