"""Profile serialization: the parallelism-profile output file.

In the paper's workflow the instrumented binary "produces a parallelism
profile output file" which the planner consumes later (§3); the compressed
dictionary is the on-disk format (§4.4). This module provides that file:
a JSON document carrying the dictionary, the root character, and the static
region tree, so a program can be profiled once and re-planned many times —
including with different personalities or exclusion lists — without
re-running it.
"""

from __future__ import annotations

import json
import os
from typing import IO

from repro.frontend.source import SourceLocation, SourceSpan
from repro.hcpa.summaries import CompressionDictionary, DictEntry, ParallelismProfile
from repro.instrument.regions import RegionKind, StaticRegion, StaticRegionTree
from repro.obs.metrics import get_metrics, metrics_enabled

#: magic string identifying a Kremlin parallelism-profile file
FORMAT_NAME = "kremlin-parallelism-profile"
#: schema version written by this build
FORMAT_VERSION = 1
#: schema versions this build can read
SUPPORTED_VERSIONS = (1,)


class ProfileFormatError(Exception):
    """Raised when a profile file is malformed."""


class ProfileVersionError(ProfileFormatError):
    """Raised when a profile file's schema version is not supported.

    Distinct from :class:`ProfileFormatError` so callers can tell "this is
    a Kremlin profile, but from an incompatible version — re-profile" from
    "this is not a profile at all".
    """

    def __init__(self, found):
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        super().__init__(
            f"unsupported profile schema version {found!r} "
            f"(this build reads version{'s' if len(SUPPORTED_VERSIONS) > 1 else ''} "
            f"{supported}); re-profile the program with this version of kremlin"
        )
        self.found = found


def _check_header(data: dict) -> None:
    """Validate the magic + schema-version header before any other key."""
    magic = data.get("format")
    if magic != FORMAT_NAME:
        raise ProfileFormatError(
            "not a kremlin parallelism profile "
            f"(magic header {magic!r}, expected {FORMAT_NAME!r})"
        )
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ProfileVersionError(version)


def _span_to_json(span: SourceSpan) -> dict:
    return {
        "file": span.filename,
        "start": [span.start.line, span.start.column],
        "end": [span.end.line, span.end.column],
    }


def _span_from_json(data: dict) -> SourceSpan:
    return SourceSpan(
        SourceLocation(*data["start"]),
        SourceLocation(*data["end"]),
        data["file"],
    )


def profile_to_json(profile: ParallelismProfile) -> dict:
    """Encode a profile as a JSON-serializable dict."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "program": profile.program_name,
        "instructions_retired": profile.instructions_retired,
        "total_work": profile.total_work,
        "max_depth": profile.max_depth,
        "root_char": profile.root_char,
        "raw_records": profile.dictionary.raw_records,
        "dictionary": [
            {
                "static": entry.static_id,
                "work": entry.work,
                "cp": entry.cp,
                "children": [list(pair) for pair in entry.children],
            }
            for entry in profile.dictionary.entries
        ],
        "regions": [
            {
                "id": region.id,
                "kind": region.kind.value,
                "name": region.name,
                "parent": region.parent_id,
                "function": region.function_name,
                "loop_depth": region.loop_depth,
                "span": _span_to_json(region.span),
                "verdict": region.verdict,
                "static_cost": (
                    region.static_cost.to_json()
                    if region.static_cost is not None
                    else None
                ),
            }
            for region in profile.regions
        ],
    }


def profile_from_json(data: dict) -> ParallelismProfile:
    """Decode a profile produced by :func:`profile_to_json`.

    Raises :class:`ProfileVersionError` on a schema-version mismatch and
    :class:`ProfileFormatError` on anything else malformed — never a raw
    ``KeyError`` from a missing section.
    """
    _check_header(data)
    missing = [
        key
        for key in (
            "regions",
            "dictionary",
            "root_char",
            "raw_records",
            "instructions_retired",
            "total_work",
        )
        if key not in data
    ]
    if missing:
        raise ProfileFormatError(
            f"profile file is missing required field(s): {', '.join(missing)}"
        )

    regions = StaticRegionTree()
    for record in data["regions"]:
        region = regions.add(
            RegionKind(record["kind"]),
            record["name"],
            _span_from_json(record["span"]),
            None,  # parents wired below to preserve original ids
            record["function"],
            loop_depth=record["loop_depth"],
        )
        # Older profiles predate the static analyzer: default to "?".
        region.verdict = record.get("verdict", "?")
        cost_record = record.get("static_cost")
        if cost_record is not None:
            from repro.analysis.static_cost import cost_from_json

            region.static_cost = cost_from_json(cost_record)
        if region.id != record["id"]:
            raise ProfileFormatError("region ids must be dense and ordered")
    # Re-establish parent/children links exactly as stored.
    for record in data["regions"]:
        if record["parent"] is not None:
            region = regions.region(record["id"])
            parent = regions.region(record["parent"])
            region.parent_id = parent.id
            parent.children_ids.append(region.id)

    dictionary = CompressionDictionary()
    for char, record in enumerate(data["dictionary"]):
        children = tuple((int(c), int(n)) for c, n in record["children"])
        for child_char, _count in children:
            if child_char >= char:
                raise ProfileFormatError(
                    "dictionary is not in leaf-first order"
                )
        entry = DictEntry(
            char, record["static"], record["work"], record["cp"], children
        )
        dictionary.entries.append(entry)
        dictionary._index[(entry.static_id, entry.work, entry.cp, children)] = char
    dictionary.raw_records = data["raw_records"]

    root_char = data["root_char"]
    if not 0 <= root_char < len(dictionary.entries):
        raise ProfileFormatError("root character out of range")

    return ParallelismProfile(
        dictionary=dictionary,
        root_char=root_char,
        regions=regions,
        instructions_retired=data["instructions_retired"],
        total_work=data["total_work"],
        program_name=data.get("program", "<program>"),
        max_depth=data.get("max_depth"),
    )


def save_profile(profile: ParallelismProfile, path_or_file: str | IO[str]) -> None:
    """Write a profile to a JSON file (path or open text file).

    Missing parent directories are created, so ``kremlin --save-profile
    results/run1/prog.json`` works on a fresh checkout."""
    text = json.dumps(profile_to_json(profile))
    if metrics_enabled():
        registry = get_metrics()
        registry.counter("serialize.profiles").inc()
        registry.counter("serialize.bytes").inc(len(text))
    if isinstance(path_or_file, str):
        parent = os.path.dirname(path_or_file)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path_or_file.write(text)


def load_profile(path_or_file: str | IO[str]) -> ParallelismProfile:
    """Read a profile written by :func:`save_profile`."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(path_or_file)
    if not isinstance(data, dict):
        raise ProfileFormatError("profile file must contain a JSON object")
    return profile_from_json(data)
