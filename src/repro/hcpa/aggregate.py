"""Per-static-region aggregation over the compressed profile.

Operates directly on the dictionary — each character is processed once and
weighted by how many dynamic regions it stands for — which is the paper's
decompression-free planning-time traversal (§4.4: *processing each character
therefore corresponds to processing thousands of dynamic regions*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hcpa.self_parallelism import self_work
from repro.hcpa.summaries import ParallelismProfile
from repro.instrument.regions import RegionKind, StaticRegion

#: A loop is classified DOALL when its self-parallelism is equivalent to its
#: iteration count (§5.1); "equivalent" uses this relative tolerance.
DOALL_RATIO = 0.7


@dataclass
class RegionProfile:
    """Aggregated dynamic behaviour of one static region."""

    region: StaticRegion
    #: dynamic instances observed
    instances: int = 0
    #: total work across instances (inclusive of children)
    work: int = 0
    #: total critical-path length across instances
    cp: int = 0
    #: Σ instances (Σ children cp + self-work): numerator of aggregate SP
    sp_numerator: float = 0.0
    #: total self-work across instances
    self_work: int = 0
    #: Σ loop iterations (loop regions only)
    iterations: int = 0
    #: fraction of whole-program work spent in this region
    coverage: float = 0.0

    @property
    def static_id(self) -> int:
        return self.region.id

    @property
    def kind(self) -> RegionKind:
        return self.region.kind

    @property
    def self_parallelism(self) -> float:
        """Instance-weighted aggregate SP (eq. 1 summed over instances)."""
        if self.cp <= 0:
            return 1.0
        return max(1.0, self.sp_numerator / self.cp)

    @property
    def total_parallelism(self) -> float:
        """Classic CPA parallelism, aggregated the same way."""
        if self.cp <= 0:
            return 1.0
        return max(1.0, self.work / self.cp)

    @property
    def average_iterations(self) -> float:
        if not self.region.is_loop or self.instances == 0:
            return 0.0
        return self.iterations / self.instances

    @property
    def is_doall(self) -> bool:
        """True when SP is equivalent to the iteration count (§5.1)."""
        if not self.region.is_loop:
            return False
        avg = self.average_iterations
        if avg <= 1.0:
            return False
        return self.self_parallelism >= DOALL_RATIO * avg

    @property
    def average_work(self) -> float:
        return self.work / self.instances if self.instances else 0.0

    def __repr__(self) -> str:
        return (
            f"<profile #{self.static_id} {self.region.name} "
            f"work={self.work} SP={self.self_parallelism:.1f} "
            f"cov={self.coverage:.1%}>"
        )


@dataclass
class AggregatedProfile:
    """All region profiles of a run plus the observed dynamic nesting."""

    profiles: dict[int, RegionProfile]
    #: the compressed profile this aggregation came from (planners traverse
    #: its dictionary directly)
    source_profile: "ParallelismProfile | None" = None
    #: observed dynamic parent -> children edges between *static* regions
    #: (includes nesting created by calls, unlike the lexical tree)
    children: dict[int, set[int]] = field(default_factory=dict)
    root_static_id: int = -1
    total_work: int = 0

    def profile(self, static_id: int) -> RegionProfile:
        return self.profiles[static_id]

    def children_of(self, static_id: int) -> set[int]:
        return self.children.get(static_id, set())

    def descendants_of(self, static_id: int) -> set[int]:
        """Transitive dynamic descendants (cycle-safe for recursion)."""
        out: set[int] = set()
        stack = list(self.children_of(static_id))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self.children_of(current))
        return out

    def executed_regions(self) -> list[RegionProfile]:
        """Profiles of regions that actually ran, root first, by id."""
        return [self.profiles[k] for k in sorted(self.profiles)]

    def plannable(self) -> list[RegionProfile]:
        """Executed loop and function profiles (no loop bodies)."""
        return [p for p in self.executed_regions() if not p.region.is_body]


def aggregate_profile(profile: ParallelismProfile) -> AggregatedProfile:
    """Aggregate a compressed profile into per-static-region statistics."""
    dictionary = profile.dictionary
    entries = dictionary.entries
    counts = profile.char_counts()
    regions = profile.regions

    accumulators: dict[int, RegionProfile] = {}
    children_edges: dict[int, set[int]] = {}

    for char, entry in enumerate(entries):
        count = counts[char]
        if count == 0:
            continue
        region = regions.region(entry.static_id)
        acc = accumulators.get(entry.static_id)
        if acc is None:
            acc = RegionProfile(region=region)
            accumulators[entry.static_id] = acc

        children_cp = 0
        children_work = 0
        body_instances = 0
        for child_char, child_count in entry.children:
            child_entry = entries[child_char]
            children_cp += child_count * child_entry.cp
            children_work += child_count * child_entry.work
            children_edges.setdefault(entry.static_id, set()).add(
                child_entry.static_id
            )
            if regions.region(child_entry.static_id).is_body:
                body_instances += child_count

        sw = self_work(entry.work, [children_work])
        acc.instances += count
        acc.work += count * entry.work
        acc.cp += count * entry.cp
        acc.self_work += count * sw
        acc.sp_numerator += count * (children_cp + sw)
        if region.is_loop:
            acc.iterations += count * body_instances

    root_entry = profile.root_entry
    total_work = root_entry.work if root_entry.work > 0 else 1
    for acc in accumulators.values():
        acc.coverage = acc.work / total_work

    return AggregatedProfile(
        profiles=accumulators,
        source_profile=profile,
        children=children_edges,
        root_static_id=root_entry.static_id,
        total_work=root_entry.work,
    )
