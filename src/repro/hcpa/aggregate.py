"""Per-static-region aggregation over the compressed profile.

Operates directly on the dictionary — each character is processed once and
weighted by how many dynamic regions it stands for — which is the paper's
decompression-free planning-time traversal (§4.4: *processing each character
therefore corresponds to processing thousands of dynamic regions*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hcpa.self_parallelism import self_work
from repro.hcpa.summaries import ParallelismProfile
from repro.instrument.regions import RegionKind, StaticRegion

try:  # numpy is a declared dependency, but stay importable without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar path
    _np = None

#: A loop is classified DOALL when its self-parallelism is equivalent to its
#: iteration count (§5.1); "equivalent" uses this relative tolerance.
DOALL_RATIO = 0.7

#: dictionaries below this many characters aggregate through the scalar
#: loop — numpy's per-array overhead beats the win on tiny profiles
VECTOR_MIN_ENTRIES = 64


@dataclass
class RegionProfile:
    """Aggregated dynamic behaviour of one static region."""

    region: StaticRegion
    #: dynamic instances observed
    instances: int = 0
    #: total work across instances (inclusive of children)
    work: int = 0
    #: total critical-path length across instances
    cp: int = 0
    #: Σ instances (Σ children cp + self-work): numerator of aggregate SP
    sp_numerator: float = 0.0
    #: total self-work across instances
    self_work: int = 0
    #: Σ loop iterations (loop regions only)
    iterations: int = 0
    #: fraction of whole-program work spent in this region
    coverage: float = 0.0

    @property
    def static_id(self) -> int:
        return self.region.id

    @property
    def kind(self) -> RegionKind:
        return self.region.kind

    @property
    def self_parallelism(self) -> float:
        """Instance-weighted aggregate SP (eq. 1 summed over instances)."""
        if self.cp <= 0:
            return 1.0
        return max(1.0, self.sp_numerator / self.cp)

    @property
    def total_parallelism(self) -> float:
        """Classic CPA parallelism, aggregated the same way."""
        if self.cp <= 0:
            return 1.0
        return max(1.0, self.work / self.cp)

    @property
    def average_iterations(self) -> float:
        if not self.region.is_loop or self.instances == 0:
            return 0.0
        return self.iterations / self.instances

    @property
    def is_doall(self) -> bool:
        """True when SP is equivalent to the iteration count (§5.1)."""
        if not self.region.is_loop:
            return False
        avg = self.average_iterations
        if avg <= 1.0:
            return False
        return self.self_parallelism >= DOALL_RATIO * avg

    @property
    def average_work(self) -> float:
        return self.work / self.instances if self.instances else 0.0

    def __repr__(self) -> str:
        return (
            f"<profile #{self.static_id} {self.region.name} "
            f"work={self.work} SP={self.self_parallelism:.1f} "
            f"cov={self.coverage:.1%}>"
        )


@dataclass
class AggregatedProfile:
    """All region profiles of a run plus the observed dynamic nesting."""

    profiles: dict[int, RegionProfile]
    #: the compressed profile this aggregation came from (planners traverse
    #: its dictionary directly)
    source_profile: "ParallelismProfile | None" = None
    #: observed dynamic parent -> children edges between *static* regions
    #: (includes nesting created by calls, unlike the lexical tree)
    children: dict[int, set[int]] = field(default_factory=dict)
    root_static_id: int = -1
    total_work: int = 0

    def profile(self, static_id: int) -> RegionProfile:
        return self.profiles[static_id]

    def children_of(self, static_id: int) -> set[int]:
        return self.children.get(static_id, set())

    def descendants_of(self, static_id: int) -> set[int]:
        """Transitive dynamic descendants (cycle-safe for recursion)."""
        out: set[int] = set()
        stack = list(self.children_of(static_id))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self.children_of(current))
        return out

    def executed_regions(self) -> list[RegionProfile]:
        """Profiles of regions that actually ran, root first, by id."""
        return [self.profiles[k] for k in sorted(self.profiles)]

    def plannable(self) -> list[RegionProfile]:
        """Executed loop and function profiles (no loop bodies)."""
        return [p for p in self.executed_regions() if not p.region.is_body]


def aggregate_profile(profile: ParallelismProfile) -> AggregatedProfile:
    """Aggregate a compressed profile into per-static-region statistics.

    Dictionaries past :data:`VECTOR_MIN_ENTRIES` characters take the
    numpy array pass (:func:`_aggregate_numpy`); both paths compute the
    same integer sums (the equivalence suite asserts it), so planners
    see identical profiles whichever ran.
    """
    if _np is not None and len(profile.dictionary.entries) >= (
        VECTOR_MIN_ENTRIES
    ):
        try:
            return _aggregate_numpy(profile)
        except OverflowError:
            # Sums past int64: fall back to arbitrary-precision Python.
            pass
    return _aggregate_scalar(profile)


def _aggregate_scalar(profile: ParallelismProfile) -> AggregatedProfile:
    """Reference implementation: one Python pass over the dictionary."""
    dictionary = profile.dictionary
    entries = dictionary.entries
    counts = profile.char_counts()
    regions = profile.regions

    accumulators: dict[int, RegionProfile] = {}
    children_edges: dict[int, set[int]] = {}

    for char, entry in enumerate(entries):
        count = counts[char]
        if count == 0:
            continue
        region = regions.region(entry.static_id)
        acc = accumulators.get(entry.static_id)
        if acc is None:
            acc = RegionProfile(region=region)
            accumulators[entry.static_id] = acc

        children_cp = 0
        children_work = 0
        body_instances = 0
        for child_char, child_count in entry.children:
            child_entry = entries[child_char]
            children_cp += child_count * child_entry.cp
            children_work += child_count * child_entry.work
            children_edges.setdefault(entry.static_id, set()).add(
                child_entry.static_id
            )
            if regions.region(child_entry.static_id).is_body:
                body_instances += child_count

        sw = self_work(entry.work, [children_work])
        acc.instances += count
        acc.work += count * entry.work
        acc.cp += count * entry.cp
        acc.self_work += count * sw
        acc.sp_numerator += count * (children_cp + sw)
        if region.is_loop:
            acc.iterations += count * body_instances

    root_entry = profile.root_entry
    total_work = root_entry.work if root_entry.work > 0 else 1
    for acc in accumulators.values():
        acc.coverage = acc.work / total_work

    return AggregatedProfile(
        profiles=accumulators,
        source_profile=profile,
        children=children_edges,
        root_static_id=root_entry.static_id,
        total_work=root_entry.work,
    )


def _aggregate_numpy(profile: ParallelismProfile) -> AggregatedProfile:
    """Array-pass aggregation: the per-character work/cp/self-work sums
    become int64 scatter-adds over the flattened children lists.

    All accumulation is exact int64 (``np.add.at``, never float
    ``bincount`` weights); array construction raises ``OverflowError``
    on values past 2**63, which the caller catches to take the scalar
    path. ``sp_numerator`` converts once at the end — identical to the
    scalar path's stepwise float accumulation for any sum below 2**53.
    """
    dictionary = profile.dictionary
    entries = dictionary.entries
    n = len(entries)
    regions = profile.regions
    counts = _np.asarray(profile.char_counts(), dtype=_np.int64)
    static_id = _np.fromiter(
        (e.static_id for e in entries), _np.int64, count=n
    )
    work = _np.fromiter((e.work for e in entries), _np.int64, count=n)
    cp = _np.fromiter((e.cp for e in entries), _np.int64, count=n)

    region_by_id: dict[int, StaticRegion] = {}
    is_body = _np.empty(n, dtype=bool)
    for i, entry in enumerate(entries):
        region = region_by_id.get(entry.static_id)
        if region is None:
            region = regions.region(entry.static_id)
            region_by_id[entry.static_id] = region
        is_body[i] = region.is_body

    # Flatten the children lists of live characters (count > 0); dead
    # characters contribute nothing, exactly like the scalar skip.
    active = counts > 0
    parent_rows: list[int] = []
    child_chars: list[int] = []
    child_counts: list[int] = []
    for i, entry in enumerate(entries):
        if not active[i]:
            continue
        for child_char, child_count in entry.children:
            parent_rows.append(i)
            child_chars.append(child_char)
            child_counts.append(child_count)
    m = len(parent_rows)
    children_cp = _np.zeros(n, dtype=_np.int64)
    children_work = _np.zeros(n, dtype=_np.int64)
    body_instances = _np.zeros(n, dtype=_np.int64)
    children_edges: dict[int, set[int]] = {}
    if m:
        pidx = _np.fromiter(parent_rows, _np.int64, count=m)
        cchar = _np.fromiter(child_chars, _np.int64, count=m)
        ccnt = _np.fromiter(child_counts, _np.int64, count=m)
        _np.add.at(children_cp, pidx, ccnt * cp[cchar])
        _np.add.at(children_work, pidx, ccnt * work[cchar])
        _np.add.at(
            body_instances, pidx, _np.where(is_body[cchar], ccnt, 0)
        )
        pairs = _np.unique(
            _np.stack((static_id[pidx], static_id[cchar]), axis=1), axis=0
        )
        for parent_sid, child_sid in pairs.tolist():
            children_edges.setdefault(parent_sid, set()).add(child_sid)

    sw = work - children_work
    _np.maximum(sw, 0, out=sw)  # eq. 2's defensive clamp (self_work)

    act = _np.nonzero(active)[0]
    sid_act = static_id[act]
    uniq, inverse = _np.unique(sid_act, return_inverse=True)
    cnt_act = counts[act]

    def _accumulate(values):
        out = _np.zeros(len(uniq), dtype=_np.int64)
        _np.add.at(out, inverse, values)
        return out

    instances = _accumulate(cnt_act)
    total_work_arr = _accumulate(cnt_act * work[act])
    total_cp = _accumulate(cnt_act * cp[act])
    total_sw = _accumulate(cnt_act * sw[act])
    total_sp_num = _accumulate(cnt_act * (children_cp + sw)[act])
    total_iters = _accumulate(cnt_act * body_instances[act])

    accumulators: dict[int, RegionProfile] = {}
    for j, sid in enumerate(uniq.tolist()):
        region = region_by_id[sid]
        accumulators[sid] = RegionProfile(
            region=region,
            instances=int(instances[j]),
            work=int(total_work_arr[j]),
            cp=int(total_cp[j]),
            sp_numerator=float(total_sp_num[j]),
            self_work=int(total_sw[j]),
            iterations=int(total_iters[j]) if region.is_loop else 0,
        )

    root_entry = profile.root_entry
    total_work = root_entry.work if root_entry.work > 0 else 1
    for acc in accumulators.values():
        acc.coverage = acc.work / total_work

    return AggregatedProfile(
        profiles=accumulators,
        source_profile=profile,
        children=children_edges,
        root_static_id=root_entry.static_id,
        total_work=root_entry.work,
    )
