"""The self-parallelism metric (paper §4.3, equations 1 and 2).

Given a region R with children c_1..c_n::

    SW(R) = work(R) - Σ work(c_k)                      (eq. 2, self-work)
    SP(R) = (Σ cp(c_k) + SW(R)) / cp(R)                (eq. 1)

Self-parallelism factors out the children's parallelism by summing the
children's *critical paths* (not their work): any parallelism inside a child
collapses to its cp, so whatever ratio remains is parallelism *between*
children plus parallelism in the region's own work — exactly the analogue of
gprof's self-time. Figure 5's two canonical cases fall out directly:

* n independent children of cp ``c`` each: cp(R)=c → SP = n·c/c = n;
* n serialized children: cp(R)=n·c → SP = n·c/(n·c) = 1.

Total-parallelism (classic CPA) is ``work / cp`` and cannot localize
parallelism; the evaluation's §6.2 false-positive comparison contrasts the
two.
"""

from __future__ import annotations

from typing import Iterable


def self_work(work: int, children_work: Iterable[int]) -> int:
    """Equation 2: work performed exclusively in the region itself."""
    remaining = work - sum(children_work)
    # Profiling rounds every term independently; clamp defensively.
    return max(0, remaining)


def self_parallelism(
    cp: int | float,
    children_cp: Iterable[int | float],
    sw: int | float,
) -> float:
    """Equation 1. ``cp`` must be positive for a region that did any work;
    zero-work regions report SP = 1.0 (serial, nothing to parallelize)."""
    if cp <= 0:
        return 1.0
    numerator = sum(children_cp) + sw
    if numerator <= 0:
        return 1.0
    return max(1.0, numerator / cp)


def total_parallelism(work: int | float, cp: int | float) -> float:
    """Classic CPA average parallelism: work / critical-path length."""
    if cp <= 0:
        return 1.0
    return max(1.0, work / cp)


def parallel_time_bound(execution_time: float, sp: float) -> float:
    """Lower bound on a parallelized region's execution time (§4.3):
    ET(R) / SP(R)."""
    if sp <= 1.0:
        return execution_time
    return execution_time / sp
