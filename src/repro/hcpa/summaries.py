"""Dynamic-region summaries and the online compression dictionary.

Kremlin produces a summary for *every* dynamic region instance — for a loop
executing a million iterations, that is a million loop-body records. §4.4's
key observation is that most summaries are identical, so an online
dictionary compressor interns each ``(static region, work, critical path,
children)`` tuple as a *character*; children are described as a sorted list
of (character, count) pairs, i.e. in terms of the existing alphabet. The
alphabet necessarily grows from the leaves upward, which gives the crucial
property used everywhere downstream: **a child character id is always
smaller than its parent's**, so a single descending/ascending scan of the
alphabet is a topological traversal and the planner never needs to
decompress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument.regions import StaticRegionTree

#: Children of a dynamic region, as ((char, count), ...) sorted by char.
ChildSummary = tuple[tuple[int, int], ...]


class DictEntry:
    """One dictionary character: a deduplicated dynamic-region summary."""

    __slots__ = ("char", "static_id", "work", "cp", "children")

    def __init__(
        self,
        char: int,
        static_id: int,
        work: int,
        cp: int,
        children: ChildSummary,
    ):
        self.char = char
        self.static_id = static_id
        self.work = work
        self.cp = cp
        self.children = children

    @property
    def num_children(self) -> int:
        return sum(count for _, count in self.children)

    def __repr__(self) -> str:
        return (
            f"<char {self.char}: region #{self.static_id} work={self.work} "
            f"cp={self.cp} children={self.children}>"
        )


class CompressionDictionary:
    """The online dictionary: interns region summaries as characters."""

    def __init__(self) -> None:
        self.entries: list[DictEntry] = []
        self._index: dict[tuple, int] = {}
        #: total dynamic region instances summarized (the raw trace length)
        self.raw_records: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def intern(
        self, static_id: int, work: int, cp: int, children: ChildSummary
    ) -> int:
        """Intern one dynamic-region summary, returning its character."""
        self.raw_records += 1
        key = (static_id, work, cp, children)
        char = self._index.get(key)
        if char is None:
            char = len(self.entries)
            self._index[key] = char
            self.entries.append(DictEntry(char, static_id, work, cp, children))
        return char

    def entry(self, char: int) -> DictEntry:
        return self.entries[char]


@dataclass
class ParallelismProfile:
    """Everything one profiled run produces.

    ``root_char`` is the character of the outermost dynamic region (main's
    function region); together with the dictionary it encodes the entire
    dynamic region graph of the execution.
    """

    dictionary: CompressionDictionary
    root_char: int
    regions: StaticRegionTree
    instructions_retired: int = 0
    total_work: int = 0
    program_name: str = "<program>"
    #: profiling depth limit that was in effect (None = unlimited)
    max_depth: int | None = None

    def char_counts(self) -> list[int]:
        """How many dynamic region instances each character stands for.

        Computed by one descending pass over the alphabet (parents before
        children, since child chars are always smaller) — the
        decompression-free traversal of §4.4.
        """
        counts = [0] * len(self.dictionary.entries)
        counts[self.root_char] = 1
        for char in range(len(counts) - 1, -1, -1):
            count = counts[char]
            if count == 0:
                continue
            for child_char, child_count in self.dictionary.entries[char].children:
                counts[child_char] += count * child_count
        return counts

    @property
    def dynamic_region_count(self) -> int:
        return self.dictionary.raw_records

    @property
    def root_entry(self) -> DictEntry:
        return self.dictionary.entry(self.root_char)
