"""Multi-run profile aggregation (paper §2.4).

Kremlin is a dynamic tool, so its view is input-dependent; the paper notes
that "Kremlin supports aggregation of data from multiple runs, which reduces
these risks". This module merges the profiles of several runs of the *same
program* (identical static region tree) into one aggregate the planner can
consume.

The merge keeps the compressed representation: it re-interns every run's
dictionary into a combined dictionary under a synthetic multi-run root whose
children are the runs' root characters. All per-region statistics then sum
across runs automatically through the ordinary decompression-free traversal;
self-parallelism becomes the instance-weighted aggregate over all runs, and
coverage becomes work-weighted across runs (longer runs count more, exactly
like concatenating the executions).
"""

from __future__ import annotations

from typing import Sequence

from repro.hcpa.summaries import CompressionDictionary, ParallelismProfile
from repro.instrument.regions import RegionKind


class ProfileMergeError(Exception):
    """Raised when profiles of different programs are merged."""


def _compatible(a: ParallelismProfile, b: ParallelismProfile) -> bool:
    if len(a.regions) != len(b.regions):
        return False
    return all(
        ra.kind == rb.kind and ra.name == rb.name
        for ra, rb in zip(a.regions, b.regions)
    )


def merge_profiles(profiles: Sequence[ParallelismProfile]) -> ParallelismProfile:
    """Merge several runs of one program into a single aggregate profile.

    The result's root is a synthetic region (appended to a copy of the
    region tree) whose children are the per-run roots; its work is the total
    across runs and its cp is the sum of the runs' cps (runs execute
    serially, one after another — the aggregate answers "over all observed
    executions", not "runs in parallel").
    """
    if not profiles:
        raise ProfileMergeError("need at least one profile to merge")
    if len(profiles) == 1:
        return profiles[0]
    first = profiles[0]
    for other in profiles[1:]:
        if not _compatible(first, other):
            raise ProfileMergeError(
                "profiles come from different programs "
                f"({first.program_name!r} vs {other.program_name!r})"
            )

    # Rebuild the region tree with one extra synthetic root region.
    from repro.hcpa.serialize import profile_from_json, profile_to_json

    regions = profile_from_json(profile_to_json(first)).regions
    multi_root = regions.add(
        RegionKind.FUNCTION,
        "<multi-run>",
        first.regions.region(first.root_entry.static_id).span,
        None,
        "<multi-run>",
    )

    merged = CompressionDictionary()
    root_children: dict[int, int] = {}
    total_work = 0
    total_instructions = 0

    for profile in profiles:
        # Re-intern this run's dictionary bottom-up; children referenced by
        # an entry are always already mapped (child char < parent char).
        mapping: dict[int, int] = {}
        for char, entry in enumerate(profile.dictionary.entries):
            children = tuple(
                sorted((mapping[c], n) for c, n in entry.children)
            )
            mapping[char] = merged.intern(
                entry.static_id, entry.work, entry.cp, children
            )
        merged.raw_records += profile.dictionary.raw_records - len(
            profile.dictionary.entries
        )  # intern() above already counted one record per entry
        run_root = mapping[profile.root_char]
        root_children[run_root] = root_children.get(run_root, 0) + 1
        total_work += profile.root_entry.work
        total_instructions += profile.instructions_retired

    total_cp = sum(p.root_entry.cp for p in profiles)
    root_char = merged.intern(
        multi_root.id,
        total_work,
        total_cp,
        tuple(sorted(root_children.items())),
    )

    return ParallelismProfile(
        dictionary=merged,
        root_char=root_char,
        regions=regions,
        instructions_retired=total_instructions,
        total_work=total_work,
        program_name=first.program_name,
        max_depth=first.max_depth,
    )
