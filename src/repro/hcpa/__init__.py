"""Hierarchical critical path analysis: profiles, compression, aggregation.

This package owns the *output* side of Kremlin's discovery phase:

* :mod:`summaries` — the dynamic-region summary dictionary (the paper's
  online, dictionary-based trace compression, §4.4) and the
  :class:`ParallelismProfile` a profiled run produces;
* :mod:`self_parallelism` — the self-parallelism equations (§4.3);
* :mod:`aggregate` — per-static-region aggregation computed directly on the
  compressed dictionary (no decompression), producing the work/coverage/
  self-parallelism table the planner consumes;
* :mod:`compression` — raw-trace vs compressed-size accounting (§4.4's
  measured compression factors).
"""

from repro.hcpa.aggregate import RegionProfile, aggregate_profile
from repro.hcpa.compression import CompressionStats, compression_stats
from repro.hcpa.merge import ProfileMergeError, merge_profiles
from repro.hcpa.serialize import (
    ProfileFormatError,
    ProfileVersionError,
    load_profile,
    profile_from_json,
    profile_to_json,
    save_profile,
)
from repro.hcpa.self_parallelism import self_parallelism, self_work, total_parallelism
from repro.hcpa.summaries import (
    CompressionDictionary,
    DictEntry,
    ParallelismProfile,
)

__all__ = [
    "CompressionDictionary",
    "CompressionStats",
    "DictEntry",
    "ParallelismProfile",
    "ProfileFormatError",
    "ProfileMergeError",
    "RegionProfile",
    "aggregate_profile",
    "compression_stats",
    "load_profile",
    "merge_profiles",
    "profile_from_json",
    "profile_to_json",
    "save_profile",
    "self_parallelism",
    "self_work",
    "total_parallelism",
]
