"""Baseline planners for the Figure 9 ablation.

Figure 9 decomposes Kremlin's plan-size reduction into three stages:

1. **work only** (:class:`GprofPlanner`) — what a programmer armed with a
   serial profiler has: every region with non-negligible work coverage is a
   candidate they must examine (58.9 % of all regions, on average);
2. **+ self-parallelism** (:class:`SelfParallelismFilterPlanner`) — drop the
   low-parallelism regions (25.4 %);
3. **full planner** — OpenMP constraints + DP selection (3.0 %).
"""

from __future__ import annotations

from repro.hcpa.aggregate import AggregatedProfile
from repro.planner.base import Planner, PlannerPersonality
from repro.planner.plan import ParallelismPlan

#: A region is "hot enough to examine" when it holds at least this fraction
#: of program work. Serial profilers show a flat list, so the effective
#: cutoff is what a programmer would bother reading.
DEFAULT_WORK_COVERAGE_MIN = 0.005

GPROF_PERSONALITY = PlannerPersonality(
    name="gprof",
    min_self_parallelism=0.0,
    min_doall_speedup_pct=0.0,
    min_doacross_speedup_pct=0.0,
    allow_nested=True,
    loops_only=False,
)


class GprofPlanner(Planner):
    """Work-coverage-only 'planning': the serial-hotspot list (§2.1)."""

    def __init__(
        self,
        coverage_min: float = DEFAULT_WORK_COVERAGE_MIN,
        personality: PlannerPersonality = GPROF_PERSONALITY,
    ):
        super().__init__(personality)
        self.coverage_min = coverage_min

    def plan(
        self,
        aggregated: AggregatedProfile,
        excluded: frozenset[int] | set[int] = frozenset(),
    ) -> ParallelismPlan:
        excluded = frozenset(excluded)
        total_work = aggregated.total_work
        items = [
            self.make_item(profile, total_work)
            for profile in aggregated.plannable()
            if profile.static_id not in excluded
            and profile.coverage >= self.coverage_min
        ]
        # A hotspot list is ordered by time spent, not estimated speedup.
        items.sort(key=lambda item: -item.profile.work)
        return ParallelismPlan(
            items=items, personality=self.personality.name, excluded=excluded
        )


class SelfParallelismFilterPlanner(GprofPlanner):
    """Work coverage + self-parallelism cutoff, no full-planner constraints."""

    def __init__(
        self,
        coverage_min: float = DEFAULT_WORK_COVERAGE_MIN,
        min_self_parallelism: float = 5.0,
    ):
        super().__init__(
            coverage_min,
            GPROF_PERSONALITY.with_overrides(
                name="sp-filter", min_self_parallelism=min_self_parallelism
            ),
        )

    def plan(
        self,
        aggregated: AggregatedProfile,
        excluded: frozenset[int] | set[int] = frozenset(),
    ) -> ParallelismPlan:
        base = super().plan(aggregated, excluded)
        threshold = self.personality.min_self_parallelism
        items = [
            item for item in base.items if item.self_parallelism >= threshold
        ]
        return ParallelismPlan(
            items=items,
            personality=self.personality.name,
            excluded=base.excluded,
        )
