"""Parallelism planning (paper §5).

A *planner* turns an aggregated HCPA profile into an ordered list of regions
the programmer should parallelize — the paper's answer to "which parts of
the program should I parallelize first?". Planners are parameterized by a
**personality** capturing the target system's constraints:

* :class:`~repro.planner.openmp.OpenMPPlanner` — no nested parallel regions
  (selected via bottom-up dynamic programming over the region graph),
  self-parallelism cutoff 5.0, minimum ideal whole-program speedup 0.1 % for
  DOALL and 3 % for DOACROSS regions (§5.1);
* :class:`~repro.planner.cilk.CilkPlanner` — nesting-aware, lower thresholds
  (§5.2);
* :class:`~repro.planner.gprof.GprofPlanner` — the work-coverage-only
  baseline a serial profiler would give (Figure 9's first bar);
* :class:`~repro.planner.gprof.SelfParallelismFilterPlanner` — work +
  self-parallelism filtering without the full planner (Figure 9's second
  bar).
"""

from repro.planner.base import Planner, PlannerPersonality
from repro.planner.cilk import CILK_PERSONALITY, CilkPlanner
from repro.planner.gprof import GprofPlanner, SelfParallelismFilterPlanner
from repro.planner.openmp import OPENMP_PERSONALITY, OpenMPPlanner
from repro.planner.plan import ParallelismPlan, PlanItem
from repro.planner.registry import (
    available_personalities,
    create_planner,
    planner_class,
    register_personality,
    unregister_personality,
)
from repro.planner.speedup import estimate_program_speedup, saved_work

__all__ = [
    "CILK_PERSONALITY",
    "CilkPlanner",
    "GprofPlanner",
    "OPENMP_PERSONALITY",
    "OpenMPPlanner",
    "ParallelismPlan",
    "PlanItem",
    "Planner",
    "PlannerPersonality",
    "SelfParallelismFilterPlanner",
    "available_personalities",
    "create_planner",
    "estimate_program_speedup",
    "planner_class",
    "register_personality",
    "saved_work",
    "unregister_personality",
]
