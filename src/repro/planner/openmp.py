"""The OpenMP planner personality (§5.1).

OpenMP constraints encoded here:

* **No nested parallel regions** — on the paper's 32-core testbed, nested
  parallelism never amortized its spawning cost. Formally: in any path of
  the dynamic region graph, at most one selected region (|P ∩ R| ≤ 1).
* **Thresholds** — self-parallelism ≥ 5.0; ideal whole-program speedup
  ≥ 0.1 % for DOALL regions and ≥ 3 % for DOACROSS regions (synchronization-
  heavy and more programmer effort, so they must promise more); and enough
  work per dynamic instance to amortize fork/scheduling costs.

Selection uses the paper's bottom-up dynamic programming: the optimal plan
for a node is the better of (a) parallelizing the node itself, or (b) the
union of its children's optimal plans. A greedy "pick the largest region"
strategy is suboptimal exactly where the paper observed it (ft, lu): a
parent with good speedup can preclude a *set* of children whose combined
speedup is higher.

The DP runs over the **compressed dynamic region graph** — the dictionary's
character DAG — rather than over static regions. This matters whenever a
function is called from several places (ft's line-FFT under both the row
and the column sweep): per-static aggregation would credit such shared
children with their *global* benefit under every parent, double-counting
them and starving the outer loops. Characters are context-specific, and
because the alphabet grows from the leaves up (a child character id is
always smaller than its parent's), the whole DP is a single ascending scan
— planning never decompresses the trace (§4.4).
"""

from __future__ import annotations

from repro.hcpa.aggregate import AggregatedProfile
from repro.hcpa.summaries import ParallelismProfile
from repro.planner.base import Planner, PlannerPersonality
from repro.planner.plan import ParallelismPlan

OPENMP_PERSONALITY = PlannerPersonality(
    name="openmp",
    min_self_parallelism=5.0,
    min_doall_speedup_pct=0.1,
    min_doacross_speedup_pct=3.0,
    allow_nested=False,
    loops_only=True,
)


class OpenMPPlanner(Planner):
    def __init__(self, personality: PlannerPersonality = OPENMP_PERSONALITY):
        super().__init__(personality)

    def plan(
        self,
        aggregated: AggregatedProfile,
        excluded: frozenset[int] | set[int] = frozenset(),
        profile: ParallelismProfile | None = None,
    ) -> ParallelismPlan:
        excluded = frozenset(excluded)
        total_work = aggregated.total_work
        eligible = {p.static_id: p for p in self.candidates(aggregated, excluded)}

        if profile is None:
            profile = aggregated.source_profile
        if profile is None:
            raise ValueError(
                "OpenMPPlanner needs the compressed profile; pass profile="
            )
        entries = profile.dictionary.entries

        # Per-character benefit of parallelizing this region *in this
        # context*: the work this instance removes from the serial schedule,
        # bounded by the instance's own (context-local) self-parallelism.
        benefit = [0.0] * len(entries)
        for char, entry in enumerate(entries):
            if entry.static_id not in eligible or entry.cp <= 0:
                continue
            children_cp = 0
            children_work = 0
            for child_char, count in entry.children:
                child = entries[child_char]
                children_cp += count * child.cp
                children_work += count * child.work
            sw = max(0, entry.work - children_work)
            sp = (children_cp + sw) / entry.cp
            cap = self.personality.sp_cap
            if cap is not None:
                sp = min(sp, cap)
            if sp > 1.0:
                benefit[char] = entry.work * (1.0 - 1.0 / sp)

        # Bottom-up DP: child characters always have smaller ids, so one
        # ascending pass computes every subtree's best achievable saving.
        value = [0.0] * len(entries)
        for char, entry in enumerate(entries):
            children_total = 0.0
            for child_char, count in entry.children:
                children_total += count * value[child_char]
            own = benefit[char]
            value[char] = own if own >= children_total else children_total

        # Extraction: walk down from the root; take a character where its
        # own benefit wins, otherwise descend. A character is only reached
        # through contexts where no ancestor was selected, so every selected
        # region has at least one non-nested occurrence.
        selected: set[int] = set()
        seen: set[int] = set()
        stack = [profile.root_char]
        while stack:
            char = stack.pop()
            if char in seen:
                continue
            seen.add(char)
            entry = entries[char]
            children_total = 0.0
            for child_char, count in entry.children:
                children_total += count * value[child_char]
            own = benefit[char]
            if own > 0.0 and own >= children_total:
                selected.add(entry.static_id)
                continue
            for child_char, _count in entry.children:
                stack.append(child_char)

        items = [
            self.make_item(eligible[static_id], total_work)
            for static_id in selected
            if static_id in eligible
        ]
        plan = ParallelismPlan(
            items=items,
            personality=self.personality.name,
            excluded=excluded,
        )
        plan.sort()
        return plan
