"""The Cilk++ planner personality (§5.2).

Cilk++'s work-stealing runtime makes nested and fine-grained parallelism
cheap, so this personality (a) allows nested selections — no path
constraint, every eligible region is recommended — and (b) uses lower
self-parallelism and speedup thresholds. Function (task) regions are fair
game too, since ``cilk_spawn`` parallelizes call sites directly.
"""

from __future__ import annotations

from repro.hcpa.aggregate import AggregatedProfile
from repro.planner.base import Planner, PlannerPersonality
from repro.planner.plan import ParallelismPlan
from repro.planner.speedup import saved_work

CILK_PERSONALITY = PlannerPersonality(
    name="cilk",
    min_self_parallelism=2.0,
    min_doall_speedup_pct=0.02,
    min_doacross_speedup_pct=1.0,
    allow_nested=True,
    loops_only=False,
    # Work stealing amortizes spawns at a much finer granularity than an
    # OpenMP fork/join does.
    min_instance_work=500.0,
)


class CilkPlanner(Planner):
    def __init__(self, personality: PlannerPersonality = CILK_PERSONALITY):
        super().__init__(personality)

    def plan(
        self,
        aggregated: AggregatedProfile,
        excluded: frozenset[int] | set[int] = frozenset(),
    ) -> ParallelismPlan:
        excluded = frozenset(excluded)
        total_work = aggregated.total_work
        candidates = self.candidates(aggregated, excluded)

        if not self.personality.allow_nested:
            # A Cilk-derived personality may still be configured non-nested;
            # fall back to greedy outermost-wins selection in that case.
            candidates.sort(
                key=lambda p: -saved_work(p, self.personality.sp_cap)
            )
            kept = []
            blocked: set[int] = set()
            for profile in candidates:
                if profile.static_id in blocked:
                    continue
                descendants = aggregated.descendants_of(profile.static_id)
                if any(k.static_id in descendants for k in kept):
                    continue
                kept.append(profile)
                blocked |= descendants
            candidates = kept

        items = [self.make_item(p, total_work) for p in candidates]
        plan = ParallelismPlan(
            items=items,
            personality=self.personality.name,
            excluded=excluded,
        )
        plan.sort()
        return plan
