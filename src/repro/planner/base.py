"""Planner personality base classes (§5).

A personality bundles the constraints of a parallelization system and target
machine into a handful of architecture-independent parameters — the paper
found three thresholds suffice for OpenMP (§5.1): a minimum
self-parallelism, and minimum ideal whole-program speedups for DOALL and
DOACROSS regions (DOACROSS costs more synchronization and programmer effort,
so it must promise more).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.verdict import tag_is_safe, tag_refutes_doall
from repro.hcpa.aggregate import AggregatedProfile, RegionProfile
from repro.instrument.regions import RegionKind
from repro.planner.plan import ParallelismPlan, PlanItem
from repro.planner.speedup import estimate_program_speedup


@dataclass(frozen=True)
class PlannerPersonality:
    """Threshold parameters for a planner."""

    name: str
    #: minimum self-parallelism for a region to be worth exploiting
    min_self_parallelism: float = 5.0
    #: minimum ideal whole-program speedup for a DOALL region, in percent
    min_doall_speedup_pct: float = 0.1
    #: minimum ideal whole-program speedup for a DOACROSS region, in percent
    min_doacross_speedup_pct: float = 3.0
    #: whether the system exploits nested parallel regions profitably
    allow_nested: bool = False
    #: restrict recommendations to loop regions (OpenMP's model)
    loops_only: bool = True
    #: optional cap on exploitable SP (e.g. core count); the paper found a
    #: cap degrades plan quality, so personalities default to None
    sp_cap: float | None = None
    #: minimum average work per dynamic region instance. Synchronization and
    #: data-movement costs bound the smallest parallel region that can attain
    #: speedup (§2.3); this is how the personality encodes "the amount of
    #: work in a region should be large enough to amortize these costs"
    #: (§5.1, the ammp/art reduction-loop observation).
    min_instance_work: float = 5000.0

    def with_overrides(self, **kwargs) -> "PlannerPersonality":
        return replace(self, **kwargs)


class Planner:
    """Base planner: candidate filtering + ranking shared by personalities."""

    def __init__(self, personality: PlannerPersonality):
        self.personality = personality

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def classify(self, profile: RegionProfile) -> str:
        if profile.region.kind is RegionKind.FUNCTION:
            return "TASK"
        return "DOALL" if profile.is_doall else "DOACROSS"

    def candidates(
        self, aggregated: AggregatedProfile, excluded: frozenset[int]
    ) -> list[RegionProfile]:
        """Plannable regions that survive the personality's filters."""
        out: list[RegionProfile] = []
        for profile in aggregated.plannable():
            if profile.static_id in excluded:
                continue
            if self.personality.loops_only and not profile.region.is_loop:
                continue
            if not self.eligible(profile, aggregated.total_work):
                continue
            out.append(profile)
        return out

    def eligible(self, profile: RegionProfile, total_work: int) -> bool:
        personality = self.personality
        sp = profile.self_parallelism
        if personality.sp_cap is not None:
            sp = min(sp, personality.sp_cap)
        if sp < personality.min_self_parallelism:
            return False
        if profile.average_work < personality.min_instance_work:
            return False
        speedup = estimate_program_speedup(
            profile, total_work, personality.sp_cap
        )
        gain_pct = (speedup - 1.0) * 100.0
        threshold = (
            personality.min_doall_speedup_pct
            if self.classify(profile) == "DOALL"
            else personality.min_doacross_speedup_pct
        )
        return gain_pct >= threshold

    def make_item(
        self, profile: RegionProfile, total_work: int
    ) -> PlanItem:
        classification = self.classify(profile)
        verdict = profile.region.verdict
        refuted = classification == "DOALL" and tag_refutes_doall(verdict)
        # The execution backend can act on a loop the analyzer proved
        # safe; min(SP, avg iterations) bounds the useful chunk count.
        executable = (
            profile.region.is_loop and tag_is_safe(verdict) and not refuted
        )
        chunk_hint = 0
        if executable:
            chunk_hint = max(
                1,
                int(
                    min(
                        profile.self_parallelism,
                        max(1.0, profile.average_iterations),
                    )
                ),
            )
        cost = getattr(profile.region, "static_cost", None)
        static_sp = ""
        static_sp_delta = None
        if cost is not None:
            static_sp = cost.render_sp()
            measured = profile.self_parallelism
            if cost.sp.contains(measured):
                static_sp_delta = 0.0
            elif measured < cost.sp.lo:
                static_sp_delta = cost.sp.lo - measured
            else:
                static_sp_delta = measured - cost.sp.hi
        return PlanItem(
            profile=profile,
            est_program_speedup=estimate_program_speedup(
                profile, total_work, self.personality.sp_cap
            ),
            classification=classification,
            static_verdict=verdict,
            # Eligibility and ranking stay purely dynamic (the paper's
            # model); the static analyzer annotates, and demotes a DOALL
            # claim it can refute with a dependence witness.
            refuted=refuted,
            executable=executable,
            chunk_hint=chunk_hint,
            static_sp=static_sp,
            static_sp_delta=static_sp_delta,
        )

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------

    def plan(
        self,
        aggregated: AggregatedProfile,
        excluded: frozenset[int] | set[int] = frozenset(),
    ) -> ParallelismPlan:
        """Produce an ordered plan; subclasses implement selection."""
        raise NotImplementedError

    def replan_excluding(
        self,
        aggregated: AggregatedProfile,
        plan: ParallelismPlan,
        newly_excluded: set[int],
    ) -> ParallelismPlan:
        """The paper's exclusion-list workflow (§3): the user marks regions
        they cannot or will not parallelize and receives a fresh optimal
        plan without them."""
        excluded = frozenset(plan.excluded | set(newly_excluded))
        return self.plan(aggregated, excluded)
