"""The ``static`` planner personality: static-cost-aware pre-ranking.

Same thresholds and DP selection as the OpenMP personality, plus the
static cost model (:mod:`repro.analysis.static_cost`) in two places:

* **pruning** — a candidate whose static self-parallelism *upper* bound
  cannot reach the personality's SP threshold is dropped before the DP
  runs (its measured SP is then a profiling artifact the bound refutes);
* **pre-ranking** — recommendations whose measured SP falls outside the
  static interval (``static_sp_delta > 0``) sink below the ones the
  bounds corroborate, so the programmer attacks corroborated regions
  first. The delta itself is reported on every item.

Profiles loaded from disk carry no cost annotations (the bounds are
runtime-only); the planner then degrades to plain OpenMP behavior.
"""

from __future__ import annotations

from repro.hcpa.aggregate import AggregatedProfile, RegionProfile
from repro.hcpa.summaries import ParallelismProfile
from repro.planner.openmp import OPENMP_PERSONALITY, OpenMPPlanner
from repro.planner.plan import ParallelismPlan
from repro.planner.base import PlannerPersonality

STATIC_PERSONALITY = OPENMP_PERSONALITY.with_overrides(name="static")


class StaticPlanner(OpenMPPlanner):
    def __init__(
        self, personality: PlannerPersonality = STATIC_PERSONALITY
    ):
        super().__init__(personality)

    def candidates(
        self, aggregated: AggregatedProfile, excluded: frozenset[int]
    ) -> list[RegionProfile]:
        out: list[RegionProfile] = []
        for profile in super().candidates(aggregated, excluded):
            cost = getattr(profile.region, "static_cost", None)
            if (
                cost is not None
                and cost.sp.hi < self.personality.min_self_parallelism
            ):
                continue  # statically cannot reach the SP threshold
            out.append(profile)
        return out

    def plan(
        self,
        aggregated: AggregatedProfile,
        excluded: frozenset[int] | set[int] = frozenset(),
        profile: ParallelismProfile | None = None,
    ) -> ParallelismPlan:
        plan = super().plan(aggregated, excluded, profile=profile)
        plan.items.sort(
            key=lambda item: (
                item.static_sp_delta is not None
                and item.static_sp_delta > 0,
                -item.est_program_speedup,
            )
        )
        return plan
