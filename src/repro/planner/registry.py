"""Planner personality registry.

One name → planner-class table shared by every entry point (``cli.py``,
``repro.api``, the fuzz oracle, examples), replacing the hardcoded
dispatch dicts that used to live in each of them. Third-party
personalities plug in with :func:`register_personality`::

    from repro.planner.registry import register_personality

    register_personality("mycluster", MyClusterPlanner)

and immediately resolve everywhere a personality name is accepted —
``kremlin --personality=mycluster``, ``PlanOptions(personality=...)``,
``KremlinReport.replan(...)``.
"""

from __future__ import annotations

from repro.planner.base import Planner
from repro.planner.cilk import CilkPlanner
from repro.planner.gprof import GprofPlanner, SelfParallelismFilterPlanner
from repro.planner.openmp import OpenMPPlanner
from repro.planner.static_planner import StaticPlanner

_REGISTRY: dict[str, type[Planner]] = {}


def register_personality(
    name: str, cls: type[Planner], replace: bool = False
) -> None:
    """Register a planner class under a personality name.

    Raises ValueError on a duplicate name unless ``replace=True``.
    """
    if not name:
        raise ValueError("personality name must be non-empty")
    if not (isinstance(cls, type) and issubclass(cls, Planner)):
        raise TypeError(
            f"personality {name!r} must be a Planner subclass, got {cls!r}"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"personality {name!r} is already registered "
            f"({_REGISTRY[name].__name__}); pass replace=True to override"
        )
    _REGISTRY[name] = cls


def unregister_personality(name: str) -> None:
    """Remove a registered personality (primarily for tests)."""
    _REGISTRY.pop(name, None)


def planner_class(name: str) -> type[Planner]:
    """Look up the planner class for a personality name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown personality {name!r}; "
            f"choose from {available_personalities()}"
        ) from None


def create_planner(name: str) -> Planner:
    """Instantiate a planner by personality name."""
    return planner_class(name)()


def available_personalities() -> list[str]:
    """Sorted names of every registered personality."""
    return sorted(_REGISTRY)


# The built-in personalities of the paper's evaluation (§5, Figure 9).
register_personality("openmp", OpenMPPlanner)
register_personality("cilk", CilkPlanner)
register_personality("gprof", GprofPlanner)
register_personality("sp-filter", SelfParallelismFilterPlanner)
# OpenMP thresholds plus static-cost pruning and pre-ranking.
register_personality("static", StaticPlanner)
