"""Plan data model: ranked region recommendations (the Figure 3 output)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hcpa.aggregate import RegionProfile
from repro.instrument.regions import StaticRegion


@dataclass
class PlanItem:
    """One recommended region."""

    profile: RegionProfile
    #: estimated ideal whole-program speedup from parallelizing this region
    #: alone (Amdahl with SP as the region's parallelism)
    est_program_speedup: float
    #: 'DOALL' or 'DOACROSS' for loops, 'TASK' for functions — the
    #: *dynamic* claim, from measured self-parallelism alone
    classification: str
    #: static DOALL-safety verdict tag stamped on the region
    #: (``"?"`` = unanalyzed); see :mod:`repro.analysis.verdict`
    static_verdict: str = "?"
    #: True when the static analyzer refutes a dynamic DOALL claim
    #: (verdict ``doacross``/``unsafe``): the loop measured as DOALL but a
    #: provable cross-iteration dependence means it must be pipelined.
    refuted: bool = False
    #: True when the parallel execution backend may run this region:
    #: a loop with a safe (doall/reduction) verdict that was not refuted.
    #: The backend's own vet can still refuse it at transform time.
    executable: bool = False
    #: chunking hint for the execution backend: the useful number of
    #: chunks, min(self-parallelism, average iterations), 0 = unknown
    chunk_hint: int = 0
    #: rendered static self-parallelism interval from the cost model
    #: (``""`` = unavailable, e.g. a profile loaded from disk; a trailing
    #: ``~`` marks an imprecise interval)
    static_sp: str = ""
    #: how far the measured SP falls outside the static interval
    #: (0.0 = contained; None = no static bounds available)
    static_sp_delta: float | None = None

    @property
    def effective_classification(self) -> str:
        """The classification after static demotion: a refuted DOALL is
        only safe as DOACROSS."""
        if self.refuted and self.classification == "DOALL":
            return "DOACROSS"
        return self.classification

    @property
    def region(self) -> StaticRegion:
        return self.profile.region

    @property
    def static_id(self) -> int:
        return self.profile.static_id

    @property
    def self_parallelism(self) -> float:
        return self.profile.self_parallelism

    @property
    def coverage(self) -> float:
        return self.profile.coverage

    @property
    def location(self) -> str:
        return self.region.location

    def __repr__(self) -> str:
        return (
            f"<plan item #{self.static_id} {self.region.name} "
            f"SP={self.self_parallelism:.1f} cov={self.coverage:.1%} "
            f"est={self.est_program_speedup:.3f}x>"
        )


@dataclass
class ParallelismPlan:
    """An ordered parallelism plan.

    Items are sorted by decreasing estimated whole-program speedup, the
    order in which the programmer should attack them (§3). ``personality``
    names the planner personality that produced the plan.
    """

    items: list[PlanItem] = field(default_factory=list)
    personality: str = ""
    program_name: str = "<program>"
    #: regions the user excluded in a replanning round
    excluded: frozenset[int] = frozenset()

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index: int) -> PlanItem:
        return self.items[index]

    @property
    def region_ids(self) -> list[int]:
        return [item.static_id for item in self.items]

    @property
    def region_names(self) -> list[str]:
        return [item.region.name for item in self.items]

    def prefix(self, count: int) -> "ParallelismPlan":
        """The first ``count`` recommendations (for marginal-benefit sweeps)."""
        return ParallelismPlan(
            items=self.items[:count],
            personality=self.personality,
            program_name=self.program_name,
            excluded=self.excluded,
        )

    def sort(self) -> None:
        self.items.sort(key=lambda item: -item.est_program_speedup)
