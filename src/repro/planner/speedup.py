"""Speedup estimation: Amdahl's Law with self-parallelism (§2.2, §4.3).

Parallelizing region R bounds its execution time by ``ET(R) / SP(R)``;
serial execution time is total work, so the ideal whole-program speedup of
parallelizing R alone is::

    S(R) = T / (T - W(R) + W(R)/SP(R))

``saved_work`` is the numerator the planner's dynamic program maximizes.
"""

from __future__ import annotations

from repro.hcpa.aggregate import RegionProfile


def saved_work(profile: RegionProfile, sp_cap: float | None = None) -> float:
    """Work removed from the serial schedule by parallelizing this region.

    ``sp_cap`` optionally caps exploitable self-parallelism (e.g. at the
    core count). The paper found the cap *hurts* plan quality (§5.1) —
    higher SP correlates with more overhead-amortization headroom — so it is
    off by default; it exists for the ablation benchmarks.
    """
    sp = profile.self_parallelism
    if sp_cap is not None:
        sp = min(sp, sp_cap)
    if sp <= 1.0:
        return 0.0
    return profile.work * (1.0 - 1.0 / sp)


def estimate_program_speedup(
    profile: RegionProfile, total_work: int, sp_cap: float | None = None
) -> float:
    """Ideal whole-program speedup from parallelizing this region alone."""
    if total_work <= 0:
        return 1.0
    saved = saved_work(profile, sp_cap)
    remaining = total_work - saved
    if remaining <= 0:
        return float("inf")
    return total_work / remaining


def combined_speedup(saved_total: float, total_work: int) -> float:
    """Whole-program speedup when the plan saves ``saved_total`` work."""
    if total_work <= 0:
        return 1.0
    remaining = total_work - saved_total
    if remaining <= 0:
        return float("inf")
    return total_work / remaining
