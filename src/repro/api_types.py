"""Versioned request/response dataclasses: the API's wire vocabulary.

Every boundary that used to pass ad-hoc dicts — the CLI building planner
inputs, the service server decoding JSON bodies, callers poking at loose
result dicts — now exchanges the frozen dataclasses in this module. Each
top-level payload carries a ``schema_version`` field (mirroring the
versioned profile header in :mod:`repro.hcpa.serialize`) and round-trips
through ``to_json()`` / ``from_json()``; decoding a payload written by an
incompatible build raises :class:`SchemaVersionError` instead of producing
a half-understood object.

The five service methods and their request/response pairs live in
:data:`METHODS`; :class:`KremlinSession.serve <repro.api.KremlinSession>`
and :class:`repro.service.server.KremlinServer` both dispatch on it, so a
new endpoint is one entry plus one handler.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass, field

#: schema version written by this build into every payload
API_SCHEMA_VERSION = 1
#: schema versions this build can decode
SUPPORTED_API_VERSIONS = (1,)


class ApiPayloadError(Exception):
    """A payload dict is malformed (missing/mistyped fields)."""


class SchemaVersionError(ApiPayloadError):
    """A payload's ``schema_version`` is not supported by this build."""

    def __init__(self, payload_type: str, found):
        supported = ", ".join(str(v) for v in SUPPORTED_API_VERSIONS)
        super().__init__(
            f"unsupported {payload_type} schema version {found!r} "
            f"(this build speaks version{'s' if len(SUPPORTED_API_VERSIONS) > 1 else ''} "
            f"{supported})"
        )
        self.found = found


def source_digest(source: str) -> str:
    """The cache/program key for a source text: its sha256 hex digest."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _encode(value):
    if isinstance(value, ApiPayload):
        return value.to_json()
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    return value


def _tupleize(value):
    """Lists arriving from JSON become the tuples the frozen fields hold."""
    if isinstance(value, list):
        return tuple(_tupleize(item) for item in value)
    return value


@dataclass(frozen=True)
class ApiPayload:
    """Base record: generic field-driven ``to_json``/``from_json``.

    Subclasses that hold nested payload collections declare them in a
    ``_NESTED`` class attribute (field name → element payload class).
    Top-level payloads additionally declare a ``schema_version`` field;
    nested records (plan entries, program summaries) stay unversioned —
    the envelope's version covers them.
    """

    def to_json(self) -> dict:
        data = {}
        for spec in dataclasses.fields(self):
            if not spec.init:
                continue
            data[spec.name] = _encode(getattr(self, spec.name))
        return data

    @classmethod
    def from_json(cls, data: dict) -> "ApiPayload":
        if not isinstance(data, dict):
            raise ApiPayloadError(
                f"{cls.__name__} payload must be a JSON object, "
                f"got {type(data).__name__}"
            )
        specs = [spec for spec in dataclasses.fields(cls) if spec.init]
        names = {spec.name for spec in specs}
        if "schema_version" in names:
            version = data.get("schema_version")
            if version not in SUPPORTED_API_VERSIONS:
                raise SchemaVersionError(cls.__name__, version)
        nested = getattr(cls, "_NESTED", {})
        kwargs = {}
        for spec in specs:
            if spec.name not in data:
                if (
                    spec.default is dataclasses.MISSING
                    and spec.default_factory is dataclasses.MISSING
                ):
                    raise ApiPayloadError(
                        f"{cls.__name__} payload is missing "
                        f"required field {spec.name!r}"
                    )
                continue
            value = data[spec.name]
            element = nested.get(spec.name)
            if element is not None:
                if not isinstance(value, list):
                    raise ApiPayloadError(
                        f"{cls.__name__}.{spec.name} must be a list"
                    )
                value = tuple(element.from_json(item) for item in value)
            else:
                value = _tupleize(value)
            kwargs[spec.name] = value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ApiPayloadError(f"bad {cls.__name__} payload: {exc}")


# ----------------------------------------------------------------------
# compile / check
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CompileRequest(ApiPayload):
    """Compile + instrument (and statically analyze) one source text."""

    source: str
    filename: str = "<input>"
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class LoopVerdict(ApiPayload):
    """One loop's static DOALL-safety verdict (nested record)."""

    name: str
    location: str
    verdict: str


@dataclass(frozen=True)
class CompileResult(ApiPayload):
    """What a compile produced: structure counts + static verdicts."""

    program_key: str
    filename: str
    functions: int
    loops: int
    regions: int
    verdicts: tuple = ()
    #: served from a compile cache (source hash hit) rather than compiled
    cached: bool = False
    schema_version: int = API_SCHEMA_VERSION

    _NESTED = {"verdicts": LoopVerdict}


@dataclass(frozen=True)
class CheckRequest(ApiPayload):
    """Static analysis + lint only — no execution."""

    source: str
    filename: str = "<input>"
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class FunctionSummaryInfo(ApiPayload):
    """One function's interprocedural mod/ref summary (nested record)."""

    name: str
    #: rendered access records, e.g. ``"writes @dst[i]"``
    effects: tuple = ()
    pure: bool = False
    impure: bool = False
    #: summary hit the lattice top (unanalyzable effects)
    top: bool = False


@dataclass(frozen=True)
class RegionCostInfo(ApiPayload):
    """One loop region's static cost bounds (nested record).

    Interval ends are ``[lo, hi]`` pairs; ``None`` encodes an unbounded
    (infinite) end, which JSON cannot carry as a float.
    """

    region_id: int
    name: str
    location: str
    trip: tuple = (0, None)
    work: tuple = (0, None)
    sp: tuple = (1, None)
    #: the sp interval is claimed tight (dynamic SP must fall inside)
    precise: bool = False


@dataclass(frozen=True)
class CheckResult(ApiPayload):
    """Per-loop verdicts plus rendered lint diagnostics."""

    program_key: str
    filename: str
    verdicts: tuple = ()
    #: diagnostics rendered compiler-style, one string per finding
    diagnostics: tuple = ()
    errors: int = 0
    cached: bool = False
    #: interprocedural mod/ref summaries (absent from pre-summary payloads)
    summaries: tuple = ()
    #: static loop cost bounds (absent from pre-summary payloads)
    costs: tuple = ()
    schema_version: int = API_SCHEMA_VERSION

    _NESTED = {
        "verdicts": LoopVerdict,
        "summaries": FunctionSummaryInfo,
        "costs": RegionCostInfo,
    }


# ----------------------------------------------------------------------
# profile-submit
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProfileSubmit(ApiPayload):
    """Submit one run's parallelism profile to the store.

    ``profile`` is the serialized profile document itself
    (:func:`repro.hcpa.serialize.profile_to_json`), which carries its own
    magic + schema-version header; the store validates it and rejects
    incompatible versions with a structured error.
    """

    profile: dict
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class ProfileAck(ApiPayload):
    """Receipt for one accepted profile submission."""

    program_key: str
    program_name: str
    shard: int
    #: 1-based position of this record in its program's append log (advisory
    #: under concurrent writers: monotone, not gapless)
    sequence: int
    runs: int
    schema_version: int = API_SCHEMA_VERSION


# ----------------------------------------------------------------------
# plan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlanRequest(ApiPayload):
    """Plan from a program's merged store profile."""

    program_key: str
    personality: str = "openmp"
    exclude: tuple = ()
    limit: int | None = None
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class PlanEntry(ApiPayload):
    """One ranked plan row (nested record)."""

    region_id: int
    name: str
    location: str
    coverage: float
    self_parallelism: float
    est_speedup: float
    classification: str
    static_verdict: str
    executable: bool = False


@dataclass(frozen=True)
class PlanResponse(ApiPayload):
    """A fresh plan over everything the store has seen for a program."""

    program_key: str
    program_name: str
    personality: str
    #: how many submitted runs the merged profile aggregates
    runs: int
    items: tuple = ()
    schema_version: int = API_SCHEMA_VERSION

    _NESTED = {"items": PlanEntry}


# ----------------------------------------------------------------------
# query-summary
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SummaryRequest(ApiPayload):
    """Summarize one program (``program_key`` set) or the whole store."""

    program_key: str | None = None
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class ProgramSummary(ApiPayload):
    """Store-level rollup for one program (nested record)."""

    program_key: str
    program_name: str
    shard: int
    runs: int
    total_work: int
    instructions_retired: int


@dataclass(frozen=True)
class SummaryResponse(ApiPayload):
    """Store contents: per-program rollups + shard layout."""

    shards: int
    programs: tuple = ()
    schema_version: int = API_SCHEMA_VERSION

    _NESTED = {"programs": ProgramSummary}


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorReply(ApiPayload):
    """Structured error body carried by a failed response envelope."""

    code: str
    message: str
    schema_version: int = API_SCHEMA_VERSION


#: service method name → (request class, response class)
METHODS = {
    "compile": (CompileRequest, CompileResult),
    "check": (CheckRequest, CheckResult),
    "profile-submit": (ProfileSubmit, ProfileAck),
    "plan": (PlanRequest, PlanResponse),
    "query-summary": (SummaryRequest, SummaryResponse),
}


def request_type(method: str):
    """The request payload class for a method, or None if unknown."""
    pair = METHODS.get(method)
    return pair[0] if pair else None


def response_type(method: str):
    """The response payload class for a method, or None if unknown."""
    pair = METHODS.get(method)
    return pair[1] if pair else None


# ----------------------------------------------------------------------
# builders (program objects → typed payloads)
# ----------------------------------------------------------------------


def loop_verdicts(program) -> tuple:
    """Per-loop :class:`LoopVerdict` rows off a compiled program."""
    return tuple(
        LoopVerdict(
            name=region.name,
            location=region.location,
            verdict=region.verdict,
        )
        for region in program.regions.loops()
    )


def compile_result_for(
    program, program_key: str, cached: bool = False
) -> CompileResult:
    """Build a :class:`CompileResult` from a compiled program."""
    return CompileResult(
        program_key=program_key,
        filename=program.filename,
        functions=len(program.module.functions),
        loops=len(program.regions.loops()),
        regions=len(program.regions),
        verdicts=loop_verdicts(program),
        cached=cached,
    )


def function_summaries(program) -> tuple:
    """Typed :class:`FunctionSummaryInfo` rows off a compiled program."""
    analysis = program.analysis
    if analysis is None or not getattr(analysis, "summaries", None):
        return ()
    return tuple(
        FunctionSummaryInfo(
            name=name,
            effects=tuple(
                record.describe(summary.param_names)
                for record in summary.records
            ),
            pure=summary.pure,
            impure=summary.impure,
            top=summary.top,
        )
        for name, summary in sorted(analysis.summaries.items())
    )


def _interval_ends(interval) -> tuple:
    return (
        None if math.isinf(interval.lo) else interval.lo,
        None if math.isinf(interval.hi) else interval.hi,
    )


def region_costs(program) -> tuple:
    """Typed :class:`RegionCostInfo` rows off a compiled program."""
    analysis = program.analysis
    if analysis is None or not getattr(analysis, "costs", None):
        return ()
    costs = analysis.costs
    return tuple(
        RegionCostInfo(
            region_id=region_id,
            name=costs[region_id].name,
            location=costs[region_id].location,
            trip=_interval_ends(costs[region_id].trip),
            work=_interval_ends(costs[region_id].work),
            sp=_interval_ends(costs[region_id].sp),
            precise=costs[region_id].precise,
        )
        for region_id in sorted(costs)
    )


def check_result_for(
    program, program_key: str, source: str, cached: bool = False
) -> CheckResult:
    """Build a :class:`CheckResult` (verdicts + rendered diagnostics)."""
    from repro.analysis import Severity
    from repro.frontend.source import SourceFile

    analysis = program.analysis
    assert analysis is not None
    source_file = SourceFile(program.filename, source)
    diagnostics = tuple(
        diagnostic.render(source_file)
        for diagnostic in analysis.diagnostics
    )
    errors = sum(
        1
        for diagnostic in analysis.diagnostics
        if diagnostic.severity is Severity.ERROR
    )
    return CheckResult(
        program_key=program_key,
        filename=program.filename,
        verdicts=loop_verdicts(program),
        diagnostics=diagnostics,
        errors=errors,
        cached=cached,
        summaries=function_summaries(program),
        costs=region_costs(program),
    )


def plan_entries(plan) -> tuple:
    """Typed :class:`PlanEntry` rows for a :class:`ParallelismPlan`."""
    return tuple(
        PlanEntry(
            region_id=item.region.id,
            name=item.region.name,
            location=item.location,
            coverage=item.coverage,
            self_parallelism=item.self_parallelism,
            est_speedup=item.est_program_speedup,
            classification=item.effective_classification,
            static_verdict=item.static_verdict,
            executable=item.executable,
        )
        for item in plan.items
    )


__all__ = [
    "API_SCHEMA_VERSION",
    "ApiPayload",
    "ApiPayloadError",
    "CheckRequest",
    "CheckResult",
    "CompileRequest",
    "CompileResult",
    "ErrorReply",
    "FunctionSummaryInfo",
    "LoopVerdict",
    "METHODS",
    "PlanEntry",
    "PlanRequest",
    "PlanResponse",
    "ProfileAck",
    "ProfileSubmit",
    "ProgramSummary",
    "RegionCostInfo",
    "SchemaVersionError",
    "SummaryRequest",
    "SummaryResponse",
    "SUPPORTED_API_VERSIONS",
    "check_result_for",
    "compile_result_for",
    "function_summaries",
    "loop_verdicts",
    "plan_entries",
    "region_costs",
    "request_type",
    "response_type",
    "source_digest",
]
