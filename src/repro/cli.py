"""Command-line interface mirroring the paper's Figure 3 workflow.

::

    $ kremlin-cc tracking.c            # compile + instrument (validation)
    $ kremlin tracking.c --personality=openmp
    $ kremlin tracking.c --regions     # discovery table instead of a plan
    $ kremlin tracking.c --metrics     # runtime counters on stderr
    $ kremlin trace tracking.c         # Chrome trace_event JSON on stdout
    $ kremlin run tracking.c --parallel  # execute safe loops on a pool
    $ kremlin serve /var/kremlin/store   # profile-store service
    $ kremlin submit tracking.c --port-file /tmp/kremlin.port --plan
"""

from __future__ import annotations

import argparse
import io
import json
import sys

from repro.api import (
    CompileOptions,
    KremlinSession,
    PlanOptions,
    ProfileOptions,
)
from repro.frontend.errors import MiniCError
from repro.hcpa import (
    ProfileFormatError,
    aggregate_profile,
    load_profile,
    save_profile,
)
from repro.instrument import kremlin_cc
from repro.interp.errors import InterpreterError
from repro.ir.printer import print_module
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    collecting_metrics,
    render_metrics,
    render_tree,
)
from repro.planner.registry import available_personalities, create_planner
from repro.report import format_flat_profile, format_plan, format_region_table


ENGINES = ("compiled", "bytecode", "tree")


def _check_engine(parser: argparse.ArgumentParser, name: str) -> str:
    """Validate an ``--engine`` value: exit 2 with a suggestion on typos
    instead of letting an unknown name traceback deep in the pipeline."""
    if name in ENGINES:
        return name
    import difflib

    close = difflib.get_close_matches(name, ENGINES, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    parser.error(
        f"unknown engine {name!r}: choose from {', '.join(ENGINES)}{hint}"
    )


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv: list[str] | None = None) -> int:
    """``kremlin``: profile a program and print its parallelism plan."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        # `kremlin fuzz`: differential fuzzing of the two engines plus the
        # HCPA invariant oracle (see repro.fuzz).
        from repro.fuzz.harness import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "trace":
        # `kremlin trace`: run the full pipeline under a tracer and emit a
        # Chrome trace_event document (load in about:tracing or Perfetto).
        return _trace_main(argv[1:])
    if argv and argv[0] == "check":
        # `kremlin check`: static dependence analysis + lint, no execution.
        return _check_main(argv[1:])
    if argv and argv[0] == "run":
        # `kremlin run`: execute a program, optionally running its safe
        # loops on the parallel backend (see repro.parallel).
        return _run_main(argv[1:])
    if argv and argv[0] == "serve":
        # `kremlin serve`: the profile-store service (see repro.service).
        return _serve_main(argv[1:])
    if argv and argv[0] == "submit":
        # `kremlin submit`: profile locally, submit to a running server.
        return _submit_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="kremlin",
        description=(
            "Profile a serial MiniC program with hierarchical critical path "
            "analysis and print an ordered parallelism plan."
        ),
    )
    parser.add_argument(
        "sources",
        nargs="*",
        metavar="source",
        help="MiniC source file(s) (omit when planning --from-profile)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="profile multiple sources in N parallel worker processes",
    )
    parser.add_argument(
        "--personality",
        default="openmp",
        choices=available_personalities(),
        help="planner personality (default: openmp)",
    )
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument(
        "--limit", type=int, default=None, help="show only the first N regions"
    )
    parser.add_argument(
        "--regions",
        action="store_true",
        help="print the full region discovery table instead of a plan",
    )
    parser.add_argument(
        "--exclude",
        default="",
        help="comma-separated region ids to exclude before planning",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="limit the profiled region depth (paper's depth window flag)",
    )
    parser.add_argument(
        "--engine",
        default="compiled",
        help=(
            "execution engine: compiled (AOT codegen, default), bytecode, "
            "or tree (reference)"
        ),
    )
    parser.add_argument(
        "--compression",
        action="store_true",
        help="also print trace compression statistics",
    )
    parser.add_argument(
        "--flat",
        action="store_true",
        help="also print a classic gprof-style flat profile",
    )
    parser.add_argument(
        "--save-profile",
        metavar="PATH",
        default=None,
        help="write the parallelism profile to a JSON file",
    )
    parser.add_argument(
        "--format",
        default="table",
        choices=["table", "csv", "markdown"],
        help="plan output format (default: table)",
    )
    parser.add_argument(
        "--dot",
        metavar="PATH",
        default=None,
        help="write the dynamic region graph (plan highlighted) as DOT",
    )
    parser.add_argument(
        "--curve",
        action="store_true",
        help="also print the speedup-vs-cores curve for the plan",
    )
    parser.add_argument(
        "--from-profile",
        metavar="PATH",
        default=None,
        help="plan from a previously saved profile instead of running",
    )
    parser.add_argument(
        "--metrics",
        nargs="?",
        const="pretty",
        choices=["json", "pretty"],
        default=None,
        help=(
            "collect runtime self-profiling counters and print them to "
            "stderr (optionally as JSON)"
        ),
    )
    options = parser.parse_args(argv)
    _check_engine(parser, options.engine)

    if options.jobs < 1:
        parser.error("--jobs must be >= 1")
    if options.from_profile is not None:
        return _plan_from_profile(options)
    if not options.sources:
        parser.error("a source file (or --from-profile) is required")
    if len(options.sources) > 1 and (options.save_profile or options.dot):
        parser.error(
            "--save-profile/--dot write a single output file and cannot be "
            "combined with multiple sources"
        )

    # Workers never print: each source renders to (code, stdout, stderr)
    # strings and the parent emits them in input order, so --jobs output is
    # byte-identical to a serial run.
    if options.jobs > 1 and len(options.sources) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.parallel.nesting import mark_pool_worker

        jobs = min(options.jobs, len(options.sources))
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=mark_pool_worker
        ) as pool:
            rendered = list(
                pool.map(
                    _render_source_job,
                    [(options, path) for path in options.sources],
                )
            )
    else:
        rendered = [
            _render_source_job((options, path)) for path in options.sources
        ]

    status = 0
    multiple = len(options.sources) > 1
    for path, (code, out, err) in zip(options.sources, rendered):
        if multiple:
            print(f"== {path} ==")
        sys.stdout.write(out)
        sys.stderr.write(err)
        status = status or code
    return status


def _render_source_job(job: tuple) -> tuple[int, str, str]:
    """Analyze one source; returns (exit code, stdout text, stderr text).
    Module-level and picklable-argument so it can run in a worker process."""
    options, path = job
    out, err = io.StringIO(), io.StringIO()
    code = _render_source(options, path, out, err)
    return code, out.getvalue(), err.getvalue()


def _build_session(options, path: str, **obs) -> KremlinSession:
    return KremlinSession(
        compile_options=CompileOptions(filename=path),
        profile_options=ProfileOptions(
            entry=options.entry,
            max_depth=options.max_depth,
            engine=getattr(options, "engine", "compiled"),
        ),
        plan_options=PlanOptions(personality=options.personality),
        **obs,
    )


def _render_source(options, path: str, out, err) -> int:
    # Metrics are collected per source with a fresh registry so --jobs
    # workers report exactly their own counters; the registry is installed
    # for the whole body so profile serialization is counted too.
    metrics = (
        MetricsRegistry() if getattr(options, "metrics", None) else None
    )
    if metrics is not None:
        with collecting_metrics(metrics):
            code = _render_source_inner(options, path, out, err)
        print(f"-- metrics: {path} --", file=err)
        if options.metrics == "json":
            print(json.dumps(metrics.to_dict(), sort_keys=True), file=err)
        else:
            print(render_metrics(metrics), file=err)
        return code
    return _render_source_inner(options, path, out, err)


def _render_source_inner(options, path: str, out, err) -> int:
    try:
        source = _read_source(path)
        report = _build_session(options, path).analyze(source)
        if options.exclude:
            excluded = {int(x) for x in options.exclude.split(",") if x.strip()}
            report.plan = create_planner(options.personality).plan(
                report.aggregated, frozenset(excluded)
            )
    except (MiniCError, InterpreterError, OSError, ValueError) as error:
        print(f"kremlin: error: {error}", file=err)
        return 1

    if options.save_profile:
        save_profile(report.profile, options.save_profile)

    if options.dot:
        from repro.report import dynamic_region_dot

        with open(options.dot, "w", encoding="utf-8") as handle:
            handle.write(
                dynamic_region_dot(report.aggregated, report.plan.region_ids)
            )

    if options.regions:
        print(report.render_regions(), file=out)
    elif options.format == "csv":
        from repro.report import plan_to_csv

        print(plan_to_csv(report.plan), end="", file=out)
    elif options.format == "markdown":
        from repro.report import plan_to_markdown

        print(plan_to_markdown(report.plan), file=out)
    else:
        print(report.render_plan(options.limit), file=out)
    if options.flat:
        print(file=out)
        print(format_flat_profile(report.aggregated), file=out)
    if options.compression:
        print(file=out)
        print(f"trace compression: {report.compression}", file=out)
    if options.curve:
        from repro.exec_model import format_curve, speedup_curve, upperbound_curve

        print(file=out)
        print("Speedup vs cores for this plan:", file=out)
        print(
            format_curve(
                speedup_curve(report.profile, report.plan.region_ids),
                upperbound_curve(report.profile, report.plan.region_ids),
            ),
            file=out,
        )
    return 0


def _plan_from_profile(options) -> int:
    """Plan from a saved parallelism profile (no compile, no run)."""
    try:
        profile = load_profile(options.from_profile)
        aggregated = aggregate_profile(profile)
        excluded = frozenset(
            int(x) for x in options.exclude.split(",") if x.strip()
        )
        plan = create_planner(options.personality).plan(aggregated, excluded)
        plan.program_name = profile.program_name
    except (ProfileFormatError, OSError, ValueError) as error:
        print(f"kremlin: error: {error}", file=sys.stderr)
        return 1
    if options.regions:
        print(format_region_table(aggregated))
    else:
        print(format_plan(plan, options.limit))
    if options.flat:
        print()
        print(format_flat_profile(aggregated))
    return 0


def _run_main(argv: list[str]) -> int:
    """``kremlin run``: execute a program, optionally in parallel.

    Without ``--parallel`` this is a plain serial run: compile, execute,
    print the program's output. With ``--parallel`` the analyzed plan's
    SAFE_DOALL / SAFE_WITH_REDUCTION loops are chunked over a process
    pool (see docs/PARALLEL.md); output stays byte-identical to serial —
    any divergence or failure falls back to the serial result — and a
    measured-vs-predicted speedup report is printed to stderr.
    """
    parser = argparse.ArgumentParser(
        prog="kremlin run",
        description=(
            "Execute a MiniC program. With --parallel, run its statically "
            "safe loops chunked over a process pool and report measured "
            "vs predicted speedup."
        ),
    )
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="execute SAFE_DOALL plan loops on the parallel backend",
    )
    parser.add_argument(
        "--workers",
        "--parallel-workers",
        dest="workers",
        type=int,
        default=2,
        help="total parallel lanes, master included (default: 2)",
    )
    parser.add_argument(
        "--mode",
        default="fork",
        choices=["fork", "inline"],
        help=(
            "chunk transport: fork = process pool (default), inline = "
            "in-process (deterministic, for debugging)"
        ),
    )
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument(
        "--engine",
        default="compiled",
        help="execution engine: compiled (default), bytecode, or tree",
    )
    parser.add_argument(
        "--personality",
        default="openmp",
        choices=available_personalities(),
        help="planner personality used to pick loops (default: openmp)",
    )
    parser.add_argument(
        "--allow-float-reductions",
        action="store_true",
        help=(
            "parallelize float reductions despite reassociation "
            "(result may differ in low bits; see docs/PARALLEL.md)"
        ),
    )
    parser.add_argument(
        "--no-report",
        action="store_true",
        help="suppress the measured-vs-predicted report on stderr",
    )
    options = parser.parse_args(argv)
    _check_engine(parser, options.engine)
    if options.workers < 1:
        parser.error("--workers must be >= 1")

    try:
        source = _read_source(options.source)
    except OSError as error:
        print(f"kremlin: error: {error}", file=sys.stderr)
        return 1

    if not options.parallel:
        from repro.interp import Interpreter

        try:
            program = kremlin_cc(source, options.source)
            interp = Interpreter(program, engine=options.engine)
            result = interp.run(options.entry)
        except (MiniCError, InterpreterError) as error:
            print(f"kremlin: error: {error}", file=sys.stderr)
            return 1
        for line in result.output:
            print(line)
        return 0

    from repro.api import ParallelOptions

    session = KremlinSession(
        compile_options=CompileOptions(filename=options.source),
        profile_options=ProfileOptions(
            entry=options.entry, engine=options.engine
        ),
        plan_options=PlanOptions(personality=options.personality),
        execute_options=ParallelOptions(
            workers=options.workers,
            mode=options.mode,
            allow_float_reductions=options.allow_float_reductions,
        ),
    )
    try:
        report = session.execute(source)
    except (MiniCError, InterpreterError, ValueError) as error:
        print(f"kremlin: error: {error}", file=sys.stderr)
        return 1

    outcome = report.outcome
    result = (
        outcome.parallel_result if outcome.executed else outcome.serial_result
    )
    for line in result.output:
        print(line)
    if not options.no_report:
        print(report.comparison.render(), file=sys.stderr)
        if outcome.fallback:
            print(
                f"kremlin run: serial fallback: {outcome.fallback_reason}",
                file=sys.stderr,
            )
        if outcome.mismatch is not None:
            print(
                "kremlin run: parallel result mismatched serial "
                f"(serial stands): {outcome.mismatch}",
                file=sys.stderr,
            )
        for refused in outcome.refused:
            print(
                f"kremlin run: refused {refused.region_name} "
                f"({refused.location}): {refused.reason}",
                file=sys.stderr,
            )
    return 0


def _serve_main(argv: list[str]) -> int:
    """``kremlin serve``: run the profile-store service.

    Accepts concurrent ``compile``, ``check``, ``profile-submit``,
    ``plan``, and ``query-summary`` requests as versioned JSON envelopes
    over TCP, backed by a sharded on-disk profile store (see
    docs/SERVICE.md). Runs until interrupted.
    """
    parser = argparse.ArgumentParser(
        prog="kremlin serve",
        description=(
            "Serve the Kremlin pipeline over TCP: typed compile/check/"
            "profile-submit/plan/query-summary requests against a sharded "
            "on-disk profile store."
        ),
    )
    parser.add_argument("store", help="profile store directory (created)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="session worker threads"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="store shard count (first open pins it; default 8)",
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help='write "host port" here once bound (for scripts)',
    )
    parser.add_argument(
        "--metrics",
        nargs="?",
        const="pretty",
        choices=["json", "pretty"],
        default=None,
        help="print server counters to stderr on shutdown",
    )
    options = parser.parse_args(argv)
    if options.workers < 1:
        parser.error("--workers must be >= 1")

    import asyncio

    from repro.service.server import KremlinServer
    from repro.service.store import ProfileStore, ProfileStoreError

    try:
        store = (
            ProfileStore(options.store, shards=options.shards)
            if options.shards is not None
            else ProfileStore(options.store)
        )
    except (ProfileStoreError, OSError, ValueError) as error:
        print(f"kremlin serve: error: {error}", file=sys.stderr)
        return 1
    server = KremlinServer(
        store, host=options.host, port=options.port, workers=options.workers
    )

    async def _serve() -> None:
        host, port = await server.start()
        print(
            f"kremlin serve: listening on {host}:{port}, "
            f"store at {options.store} ({store.shards} shards)",
            file=sys.stderr,
        )
        if options.port_file:
            with open(options.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host} {port}\n")
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("kremlin serve: interrupted, shutting down", file=sys.stderr)
    if options.metrics:
        print("-- metrics: kremlin serve --", file=sys.stderr)
        if options.metrics == "json":
            print(
                json.dumps(server.metrics.to_dict(), sort_keys=True),
                file=sys.stderr,
            )
        else:
            print(render_metrics(server.metrics), file=sys.stderr)
    return 0


def _submit_main(argv: list[str]) -> int:
    """``kremlin submit``: profile programs locally, submit the profiles
    to a running ``kremlin serve``, and (optionally) ask it to plan over
    everything it has seen for each program."""
    parser = argparse.ArgumentParser(
        prog="kremlin submit",
        description=(
            "Profile MiniC program(s) locally and submit the parallelism "
            "profiles to a running kremlin serve instance."
        ),
    )
    parser.add_argument(
        "sources", nargs="*", help="MiniC source file(s) to profile + submit"
    )
    parser.add_argument(
        "--profile",
        action="append",
        default=None,
        metavar="PATH",
        help="submit an already-saved profile JSON file (repeatable)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=None, help="server port")
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help='read "host port" from a kremlin serve --port-file',
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="after submitting, print the server's merged plan per program",
    )
    parser.add_argument(
        "--personality",
        default="openmp",
        choices=available_personalities(),
        help="planner personality for --plan (default: openmp)",
    )
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="limit the profiled region depth",
    )
    parser.add_argument(
        "--engine",
        default="compiled",
        help="execution engine: compiled (default), bytecode, or tree",
    )
    options = parser.parse_args(argv)
    _check_engine(parser, options.engine)
    if not options.sources and not options.profile:
        parser.error("nothing to submit: pass source file(s) or --profile")
    host, port = options.host, options.port
    if options.port_file:
        try:
            with open(options.port_file, "r", encoding="utf-8") as handle:
                host, port = handle.read().split()
            port = int(port)
        except (OSError, ValueError) as error:
            print(
                f"kremlin submit: bad --port-file: {error}", file=sys.stderr
            )
            return 1
    if port is None:
        parser.error("--port (or --port-file) is required")

    from repro.hcpa.serialize import profile_to_json
    from repro.service.client import KremlinClient, ServiceError
    from repro.service.protocol import ProtocolError

    documents: list[tuple[str, dict]] = []
    for path in options.profile or []:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                documents.append((path, json.load(handle)))
        except (OSError, ValueError) as error:
            print(f"kremlin submit: error: {error}", file=sys.stderr)
            return 1
    for path in options.sources:
        try:
            source = _read_source(path)
            session = _build_session(options, path)
            profile, _ = session.profile(session.compile(source))
        except (MiniCError, InterpreterError, OSError, ValueError) as error:
            print(f"kremlin submit: error: {path}: {error}", file=sys.stderr)
            return 1
        documents.append((path, profile_to_json(profile)))

    status = 0
    try:
        with KremlinClient(host, port) as client:
            acks: dict[str, object] = {}
            for path, document in documents:
                try:
                    ack = client.submit(document)
                except ServiceError as error:
                    print(
                        f"kremlin submit: rejected {path}: {error}",
                        file=sys.stderr,
                    )
                    status = 1
                    continue
                acks[ack.program_key] = ack
                print(
                    f"{path}: submitted as {ack.program_key[:12]} "
                    f"(shard {ack.shard}, run {ack.runs})"
                )
            if options.plan:
                for key, ack in acks.items():
                    try:
                        plan = client.plan(
                            key, personality=options.personality
                        )
                    except ServiceError as error:
                        print(
                            f"kremlin submit: plan failed for "
                            f"{ack.program_name}: {error}",
                            file=sys.stderr,
                        )
                        status = 1
                        continue
                    print(_render_plan_response(plan))
    except (OSError, ProtocolError) as error:
        print(
            f"kremlin submit: cannot reach server at {host}:{port}: {error}",
            file=sys.stderr,
        )
        return 1
    return status


def _render_plan_response(plan) -> str:
    """Text table for a typed PlanResponse (server-side merged plan)."""
    lines = [
        f"{plan.program_name}: merged plan over {plan.runs} run(s) "
        f"({plan.personality} personality, {len(plan.items)} regions)"
    ]
    for rank, item in enumerate(plan.items, start=1):
        lines.append(
            f"{rank:>2}  {item.name:<20} {item.location:<24} "
            f"SP {item.self_parallelism:>7.1f}  "
            f"cov {item.coverage * 100.0:>5.1f}%  "
            f"{item.classification:<9} est x{item.est_speedup:.2f}"
        )
    return "\n".join(lines)


def _check_main(argv: list[str]) -> int:
    """``kremlin check``: run the static analyzer and lint standalone.

    Compiles each source (no execution), prints per-loop DOALL-safety
    verdicts and lint diagnostics rendered like compiler errors. Exit
    status 1 on compile errors, 2 when any ERROR-severity diagnostic
    fires, 0 otherwise.
    """
    from repro.analysis import Severity
    from repro.frontend.source import SourceFile

    parser = argparse.ArgumentParser(
        prog="kremlin check",
        description=(
            "Statically analyze a MiniC program: loop dependence "
            "classification, DOALL-safety verdicts, and lint diagnostics."
        ),
    )
    parser.add_argument("sources", nargs="+", help="MiniC source file(s)")
    parser.add_argument(
        "--no-verdicts",
        action="store_true",
        help="print only lint diagnostics, not the per-loop verdict table",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named lint rule(s) (repeatable)",
    )
    parser.add_argument(
        "--summaries",
        action="store_true",
        help="print the interprocedural mod/ref summary of every function",
    )
    parser.add_argument(
        "--cost",
        action="store_true",
        help=(
            "print the static cost bounds (trip / work / self-parallelism "
            "intervals) of every loop region"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit --summaries/--cost sections as JSON instead of text",
    )
    options = parser.parse_args(argv)

    status = 0
    for path in options.sources:
        try:
            source = _read_source(path)
            program = kremlin_cc(source, path)
        except (MiniCError, OSError) as error:
            print(f"kremlin: error: {error}", file=sys.stderr)
            status = max(status, 1)
            continue
        analysis = program.analysis
        assert analysis is not None
        if options.rule:
            from repro.analysis import LintContext, run_lint

            context = LintContext(
                module=program.module,
                reaching={
                    name: fa.reaching
                    for name, fa in analysis.functions.items()
                },
                dependences={
                    name: fa.loops
                    for name, fa in analysis.functions.items()
                },
            )
            diagnostics = run_lint(context, options.rule)
        else:
            diagnostics = analysis.diagnostics
        if not options.no_verdicts and not options.json:
            print(f"{path}: static loop verdicts")
            loops = program.regions.loops()
            if not loops:
                print("  (no loops)")
            for region in loops:
                print(
                    f"  {region.name:<24} {region.location:<24} "
                    f"{region.verdict}"
                )
            if diagnostics:
                print()
        if options.summaries or options.cost:
            from repro.analysis.static_cost import costs_to_json
            from repro.analysis.summaries import summaries_to_json

            if options.json:
                document: dict = {"file": path}
                if options.summaries:
                    document["summaries"] = summaries_to_json(
                        analysis.summaries
                    )
                if options.cost:
                    document["costs"] = costs_to_json(analysis.costs)
                print(json.dumps(document, indent=2))
            else:
                if options.summaries:
                    print(f"{path}: interprocedural mod/ref summaries")
                    for name in sorted(analysis.summaries):
                        summary = analysis.summaries[name]
                        print(f"  {name}: {summary.describe()}")
                if options.cost:
                    print(f"{path}: static loop cost bounds")
                    costs = analysis.costs
                    if not costs:
                        print("  (no loop regions)")
                    for region_id in sorted(costs):
                        cost = costs[region_id]
                        print(
                            f"  {cost.name:<24} {cost.location:<24} "
                            f"trip {cost.trip.render()} "
                            f"work {cost.work.render()} "
                            f"sp {cost.render_sp()}"
                        )
        source_file = SourceFile(path, source)
        for diagnostic in diagnostics:
            if not options.json:
                # --json keeps stdout a clean document stream; the exit
                # code still reflects ERROR-severity findings.
                print(diagnostic.render(source_file))
            if diagnostic.severity is Severity.ERROR:
                status = max(status, 2)
    return status


def _trace_main(argv: list[str]) -> int:
    """``kremlin trace``: self-profile one analysis run.

    Emits a Chrome ``trace_event`` JSON document (open in ``about:tracing``
    or https://ui.perfetto.dev) with one complete event per pipeline stage
    and the runtime counters attached as counter/metadata events.
    """
    parser = argparse.ArgumentParser(
        prog="kremlin trace",
        description=(
            "Profile the Kremlin pipeline itself while analyzing a program "
            "and emit a Chrome trace_event JSON document."
        ),
    )
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument(
        "--personality",
        default="openmp",
        choices=available_personalities(),
        help="planner personality (default: openmp)",
    )
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="limit the profiled region depth",
    )
    parser.add_argument(
        "--engine",
        default="compiled",
        help="execution engine to trace: compiled (default), bytecode, tree",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        default=None,
        help="write the trace JSON here instead of stdout",
    )
    parser.add_argument(
        "--pretty",
        action="store_true",
        help="also print the human-readable span tree to stderr",
    )
    options = parser.parse_args(argv)
    _check_engine(parser, options.engine)

    tracer = Tracer()
    metrics = MetricsRegistry()
    session = KremlinSession(
        compile_options=CompileOptions(filename=options.source),
        profile_options=ProfileOptions(
            entry=options.entry,
            max_depth=options.max_depth,
            engine=options.engine,
        ),
        plan_options=PlanOptions(personality=options.personality),
        tracer=tracer,
        metrics=metrics,
    )
    try:
        source = _read_source(options.source)
        session.analyze(source)
    except (MiniCError, InterpreterError, OSError, ValueError) as error:
        print(f"kremlin: error: {error}", file=sys.stderr)
        return 1

    document = chrome_trace(tracer, metrics)
    document.setdefault("otherData", {})["engine"] = options.engine
    text = json.dumps(document, sort_keys=True)
    print(
        f"kremlin trace: spans produced by the {options.engine!r} engine",
        file=sys.stderr,
    )
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(
            f"wrote {len(document['traceEvents'])} trace events "
            f"to {options.output}",
            file=sys.stderr,
        )
    else:
        print(text)
    if options.pretty:
        print(render_tree(tracer), file=sys.stderr)
    return 0


def main_cc(argv: list[str] | None = None) -> int:
    """``kremlin-cc``: compile and instrument, reporting program structure."""
    parser = argparse.ArgumentParser(
        prog="kremlin-cc",
        description="Compile a MiniC program with Kremlin instrumentation.",
    )
    parser.add_argument("source", help="MiniC source file")
    parser.add_argument(
        "--dump-ir", action="store_true", help="print the instrumented IR"
    )
    parser.add_argument(
        "--dump-regions", action="store_true", help="print the region tree"
    )
    options = parser.parse_args(argv)

    try:
        source = _read_source(options.source)
        program = kremlin_cc(source, options.source)
    except (MiniCError, OSError) as error:
        print(f"kremlin-cc: error: {error}", file=sys.stderr)
        return 1

    regions = program.regions
    functions = len(program.module.functions)
    loops = len(regions.loops())
    print(
        f"{options.source}: {functions} functions, {loops} loops, "
        f"{len(regions)} static regions"
    )
    if options.dump_regions:
        print(regions.format_tree())
    if options.dump_ir:
        print(print_module(program.module))
    return 0


if __name__ == "__main__":
    sys.exit(main())
