"""``kremlin-cc``: the one-call compile-and-instrument driver.

``kremlin_cc(source)`` is the library equivalent of the paper's
``make CC=kremlin-cc``: parse → lower (regions + dependence breaking) →
verify → instrument. The result bundles everything the interpreter and the
KremLib runtime need to execute and profile the program.
"""

from __future__ import annotations

from dataclasses import dataclass

import typing

from repro.frontend.parser import parse_program
from repro.instrument.costs import DEFAULT_COST_MODEL, CostModel
from repro.instrument.passes import ModuleInstrumentation, instrument_module
from repro.instrument.regions import StaticRegionTree
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.lowering.lower import lower_program
from repro.obs.trace import get_tracer

if typing.TYPE_CHECKING:
    from repro.analysis.driver import ModuleAnalysis


@dataclass
class CompiledProgram:
    """An instrumented program, ready to run (with or without profiling)."""

    module: Module
    instrumentation: ModuleInstrumentation
    source: str
    filename: str
    #: static dependence analysis (verdicts + lint); None only when
    #: compiled with ``analyze=False``
    analysis: "ModuleAnalysis | None" = None

    @property
    def regions(self) -> StaticRegionTree:
        assert self.module.regions is not None
        return self.module.regions

    @property
    def cost_model(self) -> CostModel:
        return self.instrumentation.cost_model


def kremlin_cc(
    source: str,
    filename: str = "<input>",
    cost_model: CostModel = DEFAULT_COST_MODEL,
    analyze: bool = True,
) -> CompiledProgram:
    """Compile MiniC source into an instrumented, verified program.

    With ``analyze=True`` (the default) the static dependence analyzer
    runs after instrumentation and stamps DOALL-safety verdict tags onto
    the region tree; ``analyze=False`` skips it (e.g. for perf-sensitive
    callers that only execute the program).
    """
    from repro.analysis.driver import analyze_module

    tracer = get_tracer()
    with tracer.span("compile", file=filename):
        program = parse_program(source, filename)
        with tracer.span("lower"):
            module = lower_program(program)
        with tracer.span("verify"):
            verify_module(module)
        with tracer.span("instrument") as span:
            instrumentation = instrument_module(module, cost_model)
            span.args["regions"] = len(module.regions)
        analysis = analyze_module(module) if analyze else None
    return CompiledProgram(
        module=module,
        instrumentation=instrumentation,
        source=source,
        filename=filename,
        analysis=analysis,
    )
