"""The instrumentation pass: attach runtime metadata to a lowered module.

Mirrors the paper's two LLVM instrumentation steps (§3):

* **critical-path instrumentation** — assign every instruction its latency
  from the cost model, and record, per conditional branch, the join block at
  which its control influence ends (drives the runtime control-dependence
  stack);
* **region instrumentation** — lowering already inserted
  ``region_enter``/``region_exit`` markers; this pass validates that every
  marker refers to a region in the tree and that loop markers nest properly
  with their body markers.

The pass is idempotent and does not change program semantics — exactly the
property the paper relies on when it optimizes *after* instrumenting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.loops import find_natural_loops
from repro.analysis.control_dependence import (
    ControlDependenceInfo,
    compute_control_dependence,
)
from repro.instrument.costs import DEFAULT_COST_MODEL, CostModel
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import RegionEnter, RegionExit
from repro.ir.module import Module
from repro.ir.types import FLOAT


@dataclass
class FunctionInstrumentation:
    """Per-function runtime metadata."""

    control: ControlDependenceInfo
    #: join block -> list of branch blocks whose control entry pops there.
    pops_at: dict[BasicBlock, list[BasicBlock]] = field(default_factory=dict)
    #: Blocks whose branch decides loop continuation (the header test of a
    #: for/while, or the latch test of a do-while). These branches do NOT
    #: push control-dependence entries: after induction breaking, a counted
    #: loop's iteration count is known up front, and chaining iteration k+1's
    #: control on iteration k's exit test would serialize every loop —
    #: contradicting the paper's SP = n result for parallel children
    #: (Figure 5). Loops whose exit genuinely depends on loop-carried data
    #: still serialize through the data chain itself.
    loop_branch_blocks: set[BasicBlock] = field(default_factory=set)


@dataclass
class ModuleInstrumentation:
    """All metadata :func:`instrument_module` attaches to a module."""

    cost_model: CostModel
    functions: dict[str, FunctionInstrumentation] = field(default_factory=dict)


def _shadow_operand_indices(instr) -> tuple[int, ...]:
    """Register indices whose availability times feed this instruction,
    honoring the induction/reduction dependence-breaking rule (§4.1)."""
    from repro.ir.instructions import BinOp
    from repro.ir.values import Register

    if isinstance(instr, BinOp) and instr.dep_break is not None:
        operands = (instr.rhs,) if instr.break_operand == 0 else (instr.lhs,)
    else:
        operands = instr.operands
    return tuple(
        operand.index for operand in operands if type(operand) is Register
    )


def instrument_function(
    function: Function, cost_model: CostModel
) -> FunctionInstrumentation:
    for block in function.blocks:
        for instr in block.instructions:
            is_float = instr.result is not None and instr.result.type == FLOAT
            instr.cost = cost_model.cost_of(instr.opcode, is_float=is_float)
            # Precomputed for the KremLib hot path: which register operands
            # the shadow update reads, and where the result lands.
            instr.shadow_ops = _shadow_operand_indices(instr)
            instr.result_index = (
                instr.result.index if instr.result is not None else None
            )
        terminator = block.terminator
        if terminator is not None:
            terminator.cost = cost_model.cost_of(terminator.opcode)

    control = compute_control_dependence(function)
    pops_at: dict[BasicBlock, list[BasicBlock]] = {}
    for branch_block, join in control.branch_join.items():
        if join is not None:
            pops_at.setdefault(join, []).append(branch_block)

    loop_branch_blocks: set[BasicBlock] = set()
    forest = find_natural_loops(function)
    for block in control.branch_join:
        loop = forest.loop_of(block)
        if loop is None:
            continue
        if block is loop.header or loop.header in block.successors:
            loop_branch_blocks.add(block)

    return FunctionInstrumentation(
        control=control, pops_at=pops_at, loop_branch_blocks=loop_branch_blocks
    )


def _validate_region_markers(module: Module) -> None:
    regions = module.regions
    if regions is None:
        raise ValueError("module has no region tree; run lowering first")
    valid_ids = {region.id for region in regions}
    for function in module.functions.values():
        for block in function.blocks:
            for instr in block.instructions:
                if isinstance(instr, (RegionEnter, RegionExit)):
                    if instr.region_id not in valid_ids:
                        raise ValueError(
                            f"{function.name}: marker references unknown region "
                            f"#{instr.region_id}"
                        )
        if function.region_id not in valid_ids:
            raise ValueError(f"{function.name}: function region id missing")


def instrument_module(
    module: Module, cost_model: CostModel = DEFAULT_COST_MODEL
) -> ModuleInstrumentation:
    """Attach costs and control-dependence schedules to every function."""
    _validate_region_markers(module)
    instrumentation = ModuleInstrumentation(cost_model=cost_model)
    for name, function in module.functions.items():
        instrumentation.functions[name] = instrument_function(function, cost_model)
    return instrumentation
