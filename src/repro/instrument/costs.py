"""Instruction cost model.

Every IR instruction is assigned a latency in abstract cycles; availability
times and critical-path lengths are sums of these latencies. The table is
representative of a generic out-of-order core (the paper uses LLVM
instruction latencies); the exact values shift absolute work/cp numbers but
not the *ratios* (parallelism) Kremlin reasons about, which is why the paper
can afford a simple latency model too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interp.builtins import BUILTINS

_DEFAULT_TABLE: dict[str, int] = {
    # integer arithmetic
    "binop.+": 1,
    "binop.-": 1,
    "binop.*": 3,
    "binop./": 12,
    "binop.%": 12,
    # comparisons / logical / bitwise
    "binop.==": 1,
    "binop.!=": 1,
    "binop.<": 1,
    "binop.<=": 1,
    "binop.>": 1,
    "binop.>=": 1,
    "binop.&&": 1,
    "binop.||": 1,
    "binop.&": 1,
    "binop.|": 1,
    "binop.^": 1,
    "binop.<<": 1,
    "binop.>>": 1,
    "unop.-": 1,
    "unop.!": 1,
    "copy": 0,
    "cast.int": 1,
    "cast.float": 1,
    "load": 2,
    "store": 1,
    "alloca": 1,
    "call": 5,  # user-call overhead (args/ret handling)
    "region_enter": 0,
    "region_exit": 0,
    # terminators
    "jump": 0,
    "branch": 1,
    "ret": 1,
}

#: Extra latency for float arithmetic over the int table entries.
_FLOAT_EXTRA: dict[str, int] = {
    "binop.+": 1,
    "binop.-": 1,
    "binop.*": 1,
    "binop./": 3,
}


@dataclass(frozen=True)
class CostModel:
    """Maps instruction opcodes (plus builtin names) to latencies."""

    table: dict[str, int] = field(default_factory=lambda: dict(_DEFAULT_TABLE))
    float_extra: dict[str, int] = field(default_factory=lambda: dict(_FLOAT_EXTRA))

    def cost_of(self, opcode: str, is_float: bool = False) -> int:
        if opcode.startswith("call."):
            name = opcode.split(".", 1)[1]
            spec = BUILTINS.get(name)
            if spec is not None:
                return spec.cost
            return self.table["call"]
        base = self.table.get(opcode)
        if base is None:
            raise KeyError(f"no cost for opcode {opcode!r}")
        if is_float:
            return base + self.float_extra.get(opcode, 0)
        return base


DEFAULT_COST_MODEL = CostModel()
