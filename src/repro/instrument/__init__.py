"""Static instrumentation for Kremlin.

The paper implements this stage as LLVM passes (§3, *Static
Instrumentation*): region instrumentation uncovers the program's loop and
function structure, and critical-path instrumentation inserts the calls that
drive shadow-memory timestamp propagation. Here, lowering from MiniC emits
``region_enter``/``region_exit`` markers directly (it knows the loop
structure exactly), and :func:`instrument_module` attaches per-instruction
costs, control-dependence sources, and induction/reduction flags — the static
metadata the KremLib runtime consumes.
"""

from repro.instrument.compile import CompiledProgram, kremlin_cc
from repro.instrument.costs import CostModel, DEFAULT_COST_MODEL
from repro.instrument.passes import instrument_module
from repro.instrument.regions import RegionKind, StaticRegion, StaticRegionTree

__all__ = [
    "CompiledProgram",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "RegionKind",
    "StaticRegion",
    "StaticRegionTree",
    "instrument_module",
    "kremlin_cc",
]
