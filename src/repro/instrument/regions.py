"""Static region tree: the program structure Kremlin profiles against.

A *region* (paper §2.2) is a code range whose parallelism is measured from
entry to exit. Kremlin places regions around all functions and loops. We add
one implicit ``body`` region per loop, representing a single iteration: loop
iterations are exactly the "children" of a loop region in the paper's
Figure 5, and making them first-class regions is what lets self-parallelism
of a loop come out as its iteration count for DOALL loops (§5.1: *Kremlin
identifies DOALL loops by checking for equivalence between self-parallelism
and iteration count*).

Regions nest properly by construction: a function region contains its
loops, a loop contains its body region, and a body contains inner loops.
Dynamic nesting across calls is handled at run time by the region stack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.frontend.source import SourceSpan


class RegionKind(enum.Enum):
    FUNCTION = "function"
    LOOP = "loop"
    BODY = "body"  # a single loop iteration

    def __str__(self) -> str:
        return self.value


@dataclass(eq=False)
class StaticRegion:
    """A node in the static region tree."""

    id: int
    kind: RegionKind
    name: str  # function name, or e.g. "solve#loop2" for loops
    span: SourceSpan
    parent_id: int | None = None
    children_ids: list[int] = field(default_factory=list)
    #: For LOOP regions: 1-based nesting depth within the enclosing function.
    loop_depth: int = 0
    #: The function this region lexically belongs to.
    function_name: str = ""
    #: Static DOALL-safety verdict tag for LOOP regions, stamped by
    #: :func:`repro.analysis.driver.analyze_module` (``"?"`` = unanalyzed).
    verdict: str = "?"
    #: Static cost bounds (a :class:`repro.analysis.static_cost.RegionCost`)
    #: stamped by the analysis driver; serialized with the profile so
    #: loaded profiles keep their Static SP annotations (None when the
    #: profile predates the cost model).
    static_cost: object | None = field(default=None, repr=False)

    @property
    def is_function(self) -> bool:
        return self.kind is RegionKind.FUNCTION

    @property
    def is_loop(self) -> bool:
        return self.kind is RegionKind.LOOP

    @property
    def is_body(self) -> bool:
        return self.kind is RegionKind.BODY

    @property
    def location(self) -> str:
        """Human-readable location, Figure 3 style: ``file.c (49-58)``."""
        return str(self.span)

    def __repr__(self) -> str:
        return f"<region #{self.id} {self.kind} {self.name} {self.location}>"


class StaticRegionTree:
    """All static regions of a module, indexed by id.

    There is one FUNCTION region per function. The *dynamic* region graph
    (who actually nests in whom at run time, across calls) is built during
    profiling; this tree only captures lexical structure.
    """

    def __init__(self) -> None:
        self._regions: list[StaticRegion] = []

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions)

    def region(self, region_id: int) -> StaticRegion:
        return self._regions[region_id]

    def add(
        self,
        kind: RegionKind,
        name: str,
        span: SourceSpan,
        parent_id: int | None,
        function_name: str,
        loop_depth: int = 0,
    ) -> StaticRegion:
        region = StaticRegion(
            id=len(self._regions),
            kind=kind,
            name=name,
            span=span,
            parent_id=parent_id,
            loop_depth=loop_depth,
            function_name=function_name,
        )
        self._regions.append(region)
        if parent_id is not None:
            self._regions[parent_id].children_ids.append(region.id)
        return region

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def functions(self) -> list[StaticRegion]:
        return [r for r in self._regions if r.is_function]

    def loops(self) -> list[StaticRegion]:
        return [r for r in self._regions if r.is_loop]

    def bodies(self) -> list[StaticRegion]:
        return [r for r in self._regions if r.is_body]

    def function_region(self, name: str) -> StaticRegion:
        for region in self._regions:
            if region.is_function and region.name == name:
                return region
        raise KeyError(f"no function region named {name!r}")

    def body_of(self, loop_id: int) -> StaticRegion:
        loop = self.region(loop_id)
        if not loop.is_loop:
            raise ValueError(f"region #{loop_id} is not a loop")
        for child_id in loop.children_ids:
            child = self.region(child_id)
            if child.is_body:
                return child
        raise ValueError(f"loop region #{loop_id} has no body region")

    def loop_of_body(self, body_id: int) -> StaticRegion:
        body = self.region(body_id)
        if not body.is_body or body.parent_id is None:
            raise ValueError(f"region #{body_id} is not a loop body")
        return self.region(body.parent_id)

    def ancestors(self, region_id: int) -> list[StaticRegion]:
        """Lexical ancestors, innermost first (excluding the region itself)."""
        out: list[StaticRegion] = []
        current = self.region(region_id)
        while current.parent_id is not None:
            current = self.region(current.parent_id)
            out.append(current)
        return out

    def descendants(self, region_id: int) -> list[StaticRegion]:
        """All lexical descendants, preorder (excluding the region itself)."""
        out: list[StaticRegion] = []
        stack = list(reversed(self.region(region_id).children_ids))
        while stack:
            region = self.region(stack.pop())
            out.append(region)
            stack.extend(reversed(region.children_ids))
        return out

    def plannable_regions(self) -> list[StaticRegion]:
        """Regions a planner may recommend: functions and loops.

        Body regions are analysis artifacts (one iteration), not things a
        programmer parallelizes directly, so they are excluded — matching the
        paper, which reports region counts over loops and functions.
        """
        return [r for r in self._regions if not r.is_body]

    def format_tree(self) -> str:
        """Indented dump of the whole tree, for debugging and docs."""
        lines: list[str] = []

        def visit(region: StaticRegion, depth: int) -> None:
            lines.append("  " * depth + f"#{region.id} {region.kind} {region.name} {region.location}")
            for child_id in region.children_ids:
                visit(self.region(child_id), depth + 1)

        for region in self._regions:
            if region.parent_id is None:
                visit(region, 0)
        return "\n".join(lines)
