"""Static work / critical-path / self-parallelism bounds ("static Kremlin", part 2).

Every loop region gets a symbolic cost estimate computed without
running the program: a trip-count interval from the induction-variable
bounds, a per-entry work interval (instruction costs scaled by the trip
intervals of enclosing loops, plus bottom-up call-cost intervals from
the call graph), and from those a **static self-parallelism interval**
``[sp_lo, sp_hi]``:

* ``sp_hi = trip_hi`` — a loop's *body* self-parallelism never exceeds
  its iteration count (``Σ body cp ≤ N·cp``). The runtime's full SP also
  counts the loop's own header/latch bookkeeping as parallel self work,
  so it can exceed the trip count by a small overhead term; the fuzz
  oracle therefore checks the upper bound against the body-only value;
* ``sp_lo = DOALL_RATIO · trip_lo`` when the verdict is safe, the
  iterations are structurally identical, and the trip count is exact —
  exactly the regime where the dynamic verdict cross-check already
  proves ``SP ≥ DOALL_RATIO · iterations``; otherwise ``sp_lo = 1``
  and the interval is marked **imprecise**.

The fuzz oracle hard-checks containment of the dynamic HCPA value only
for *precise* intervals; imprecise ones are informational (they still
bound from above when the trip bound is finite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.dependence import (
    LoopDependenceInfo,
    iterations_structurally_identical,
)
from repro.analysis.dominators import dominator_tree
from repro.analysis.loops import Loop
from repro.ir.instructions import Call, Ret
from repro.ir.module import Module

#: fraction of the iteration count a dynamically-DOALL loop's measured
#: self-parallelism must reach (mirrors repro.hcpa.aggregate.DOALL_RATIO)
DOALL_RATIO = 0.7


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; ``hi = inf`` means unbounded."""

    lo: float = 0.0
    hi: float = math.inf

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.hi)

    @property
    def exact(self) -> bool:
        return self.lo == self.hi and self.bounded

    def plus(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def times(self, other: "Interval") -> "Interval":
        # cost intervals are non-negative, so the ends multiply directly
        return Interval(self.lo * other.lo, self.hi * other.hi)

    def scaled(self, lo: float, hi: float) -> "Interval":
        return Interval(self.lo * lo, self.hi * hi)

    def contains(self, value: float, slack: float = 0.0) -> bool:
        return self.lo - slack <= value <= self.hi + slack

    def render(self) -> str:
        def fmt(x: float) -> str:
            if math.isinf(x):
                return "inf"
            if x == int(x):
                return str(int(x))
            return f"{x:.1f}"

        if math.isinf(self.hi):
            return f"[{fmt(self.lo)},inf)"
        return f"[{fmt(self.lo)},{fmt(self.hi)}]"


ZERO = Interval(0.0, 0.0)
UNKNOWN_TRIP = Interval(0.0, math.inf)


@dataclass
class RegionCost:
    """Static cost bounds for one LOOP region."""

    region_id: int
    name: str
    location: str
    trip: Interval
    work: Interval
    cp: Interval
    sp: Interval
    #: the sp interval is claimed tight (the fuzz oracle hard-checks
    #: that the dynamic HCPA self-parallelism falls inside it)
    precise: bool

    def render_sp(self) -> str:
        return self.sp.render() + ("" if self.precise else " ~")

    def to_json(self) -> dict:
        def end(x: float):
            return None if math.isinf(x) else x

        return {
            "region": self.region_id,
            "name": self.name,
            "location": self.location,
            "trip": [end(self.trip.lo), end(self.trip.hi)],
            "work": [end(self.work.lo), end(self.work.hi)],
            "cp": [end(self.cp.lo), end(self.cp.hi)],
            "sp": [end(self.sp.lo), end(self.sp.hi)],
            "precise": self.precise,
        }


# ----------------------------------------------------------------------
# Trip-count intervals
# ----------------------------------------------------------------------


def trip_interval(info: LoopDependenceInfo) -> Interval:
    """Per-entry iteration-count interval of a natural loop."""
    best: Interval | None = None
    for ind in info.inductions.values():
        if (
            ind.step in (None, 0)
            or ind.init is None
            or ind.lo is None
            or ind.hi is None
        ):
            continue
        if ind.hi < ind.lo:
            return ZERO  # empty value range: body never runs
        # the variable starts at one end of its range and walks to the
        # other; anything else means the bound belongs to another IV
        if ind.step > 0 and ind.init != ind.lo:
            continue
        if ind.step < 0 and ind.init != ind.hi:
            continue
        count = (ind.hi - ind.lo) // abs(ind.step) + 1
        candidate = Interval(float(count), float(count))
        if best is None or candidate.hi < best.hi:
            best = candidate
    if best is None:
        return UNKNOWN_TRIP
    if info.exit_count > 1:
        # a break can stop the loop anywhere before the counted bound
        return Interval(0.0, best.hi)
    return best


# ----------------------------------------------------------------------
# Work intervals
# ----------------------------------------------------------------------


class _LoopView:
    """Innermost-loop lookup over the *analyzed* Loop objects.

    Trip intervals are keyed by the Loop instances the dependence pass
    produced; rebuilding the forest here would mint fresh objects that
    miss those keys, so the view is derived from the infos instead.
    """

    def __init__(self, loops: list[Loop]):
        self.block_loop: dict = {}
        for loop in loops:
            for block in loop.blocks:
                current = self.block_loop.get(block)
                if current is None or loop.depth > current.depth:
                    self.block_loop[block] = loop

    def loop_of(self, block) -> Loop | None:
        return self.block_loop.get(block)


def _block_base_cost(block) -> float:
    cost = sum(instr.cost for instr in block.instructions)
    if block.terminator is not None:
        cost += block.terminator.cost
    return float(cost)


def _enclosing_factors(
    forest, block, trips: dict[Loop, Interval], stop: Loop | None
) -> tuple[float, float]:
    """``(lo, hi)`` execution-count factors for a block from the trip
    intervals of its enclosing loops, up to (exclusive) ``stop``.

    The +1 on the upper end covers the loop header, which runs once
    more than the body.
    """
    lo = 1.0
    hi = 1.0
    loop = forest.loop_of(block)
    while loop is not None and loop is not stop:
        trip = trips.get(loop, UNKNOWN_TRIP)
        lo *= max(1.0, trip.lo)
        hi *= trip.hi + 1.0
        loop = loop.parent
    return lo, hi


def _scoped_work(
    function,
    forest,
    trips: dict[Loop, Interval],
    call_work: dict[str, Interval],
    scope: Loop | None,
    dom=None,
) -> Interval:
    """Work interval of one execution of ``scope`` (one loop iteration,
    or the whole function body when ``scope`` is None)."""
    blocks = scope.blocks if scope is not None else function.blocks
    dom = dom or dominator_tree(function)
    rets = [b for b in function.blocks if isinstance(b.terminator, Ret)]
    lo = 0.0
    hi = 0.0
    for block in blocks:
        base = Interval(_block_base_cost(block), _block_base_cost(block))
        for instr in block.instructions:
            if isinstance(instr, Call) and not instr.is_builtin:
                base = base.plus(
                    call_work.get(instr.callee, Interval(0.0, math.inf))
                )
        f_lo, f_hi = _enclosing_factors(forest, block, trips, scope)
        hi += base.hi * f_hi
        # a block on every path to every return executes at least once
        # per entry of the scope (times the enclosing lower trip counts)
        if rets and all(dom.dominates(block, ret) for ret in rets):
            lo += base.lo * f_lo
    return Interval(lo, hi)


def function_work_intervals(
    module: Module,
    infos_by_function: dict[str, list[LoopDependenceInfo]],
    graph: CallGraph | None = None,
) -> dict[str, Interval]:
    """Bottom-up per-call work interval for every user function."""
    graph = graph or build_call_graph(module)
    work: dict[str, Interval] = {}
    for component in graph.sccs():
        members = [n for n in component if n in module.functions]
        recursive = len(component) > 1 or any(
            n in graph.callees.get(n, set()) for n in members
        )
        for name in members:
            function = module.functions[name]
            if recursive:
                # one activation at minimum; depth is data-dependent
                entry = (
                    _block_base_cost(function.blocks[0])
                    if function.blocks
                    else 0.0
                )
                work[name] = Interval(entry, math.inf)
                continue
            infos = infos_by_function.get(name, [])
            forest = _LoopView([info.loop for info in infos])
            trips = {info.loop: trip_interval(info) for info in infos}
            work[name] = _scoped_work(function, forest, trips, work, None)
    return work


# ----------------------------------------------------------------------
# Per-region cost assembly
# ----------------------------------------------------------------------


def compute_static_costs(
    module: Module,
    infos_by_function: dict[str, list[LoopDependenceInfo]],
    regions=None,
    graph: CallGraph | None = None,
) -> dict[int, RegionCost]:
    """Static cost bounds for every resolvable LOOP region."""
    from repro.analysis.driver import resolve_loop_region

    graph = graph or build_call_graph(module)
    call_work = function_work_intervals(module, infos_by_function, graph)
    out: dict[int, RegionCost] = {}
    for name, infos in infos_by_function.items():
        function = module.functions.get(name)
        if function is None:
            continue
        forest = _LoopView([info.loop for info in infos])
        trips = {info.loop: trip_interval(info) for info in infos}
        dom = dominator_tree(function)
        for info in infos:
            region_id = resolve_loop_region(regions, info)
            if region_id is None:
                continue
            trip = trips[info.loop]
            iter_work = _scoped_work(
                function, forest, trips, call_work, info.loop, dom
            )
            work = Interval(
                trip.lo * iter_work.lo, (trip.hi + 1.0) * iter_work.hi
            )
            cp = Interval(min(1.0, work.hi), work.hi)
            precise = (
                info.verdict.is_safe
                and trip.exact
                and iterations_structurally_identical(info)
            )
            sp_hi = max(1.0, trip.hi)
            sp_lo = (
                max(1.0, DOALL_RATIO * trip.lo) if precise else 1.0
            )
            region = regions.region(region_id) if regions else None
            out[region_id] = RegionCost(
                region_id=region_id,
                name=region.name if region is not None else f"loop{region_id}",
                location=(
                    region.location if region is not None else "?"
                ),
                trip=trip,
                work=work,
                cp=cp,
                sp=Interval(min(sp_lo, sp_hi), sp_hi),
                precise=precise,
            )
    return out


def costs_to_json(costs: dict[int, RegionCost]) -> list[dict]:
    return [costs[region_id].to_json() for region_id in sorted(costs)]


def cost_from_json(data: dict) -> RegionCost:
    """Decode a :meth:`RegionCost.to_json` document (``null`` = inf)."""

    def interval(pair) -> Interval:
        lo, hi = pair
        return Interval(
            0.0 if lo is None else float(lo),
            math.inf if hi is None else float(hi),
        )

    return RegionCost(
        region_id=int(data["region"]),
        name=data["name"],
        location=data["location"],
        trip=interval(data["trip"]),
        work=interval(data["work"]),
        cp=interval(data["cp"]),
        sp=interval(data["sp"]),
        precise=bool(data["precise"]),
    )
