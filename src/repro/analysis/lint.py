"""Pluggable lint framework over the IR and the dependence analysis.

A *rule* is a function registered with :func:`rule` that inspects one
function (plus the module-level :class:`LintContext`) and yields
:class:`Diagnostic` objects. Diagnostics render exactly like the front
end's :class:`~repro.frontend.errors.MiniCError` — a
``file:line:col: severity: message`` header followed by the offending
source line and a caret when the source text is available — so
``kremlin check`` output reads like compiler output.

Built-in rules:

``loop-carried-dependence``
    Surfaces every dependence witness the classifier found in a loop whose
    verdict is ``DOACROSS_ONLY`` or ``UNSAFE``, with the witness chain
    attached as notes.
``unused-result``
    An instruction computes a value nobody reads (calls are exempt — they
    may be evaluated for effect; so are region markers and allocas).
``pure-call-result-unused``
    A call to a provably side-effect-free function (per the
    interprocedural mod/ref summaries, or a pure builtin) whose result
    is never used: the call is dead work. Impure calls stay exempt.
``write-never-read``
    A named source variable (or global) is assigned but its value is never
    read anywhere in the function (module, for globals).
``loop-invariant-store``
    A store inside a loop whose address and value are both loop-invariant:
    every iteration rewrites the same cell with the same value — the store
    belongs outside the loop (and it blocks DOALL).

New rules register themselves with the decorator; see docs/ANALYSIS.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.analysis.dataflow import ReachingDefinitions
from repro.analysis.dependence import LoopDependenceInfo
from repro.analysis.verdict import DependenceWitness, Verdict
from repro.frontend.source import SourceFile, SourceSpan
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Call,
    Copy,
    Load,
    RegionEnter,
    RegionExit,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import GlobalRef, Register


class Severity(enum.Enum):
    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass
class Diagnostic:
    """One lint finding, rendered like the front end's error formatter."""

    rule: str
    severity: Severity
    message: str
    span: SourceSpan | None = None
    #: secondary locations, e.g. the hops of a dependence witness chain
    notes: list[tuple[str, SourceSpan]] = field(default_factory=list)

    def render(self, source: SourceFile | None = None) -> str:
        if self.span is None:
            header = f"{self.severity}: {self.message} [{self.rule}]"
        else:
            header = (
                f"{self.span.filename}:{self.span.start}: "
                f"{self.severity}: {self.message} [{self.rule}]"
            )
        lines = [header]
        if source is not None and self.span is not None:
            try:
                text = source.line_text(self.span.start.line)
            except ValueError:
                text = None
            if text is not None:
                caret = " " * (self.span.start.column - 1) + "^"
                lines.append(f"  {text}")
                lines.append(f"  {caret}")
        for role, span in self.notes:
            lines.append(f"  {span.filename}:{span.start}: note: {role}")
        return "\n".join(lines)

    @property
    def sort_key(self) -> tuple:
        if self.span is None:
            return ("", 0, 0, self.rule, self.message)
        return (
            self.span.filename,
            self.span.start.line,
            self.span.start.column,
            self.rule,
            self.message,
        )

    def __str__(self) -> str:
        return self.render()


@dataclass
class LintContext:
    """Everything a rule may consult, precomputed once per module."""

    module: Module
    #: per-function reaching definitions
    reaching: dict[str, ReachingDefinitions]
    #: per-function loop dependence info (innermost-first)
    dependences: dict[str, list[LoopDependenceInfo]]
    #: interprocedural mod/ref summaries (name -> FunctionSummary);
    #: rules that consult them must tolerate None (legacy callers)
    summaries: "dict | None" = None


RuleFn = Callable[[Function, LintContext], Iterable[Diagnostic]]

#: rule name -> implementation; populated by the :func:`rule` decorator.
RULES: dict[str, RuleFn] = {}


def rule(name: str) -> Callable[[RuleFn], RuleFn]:
    """Register a lint rule under ``name`` (last registration wins)."""

    def decorate(fn: RuleFn) -> RuleFn:
        RULES[name] = fn
        return fn

    return decorate


def run_lint(
    context: LintContext, rules: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Run the named rules (default: all registered) over every function,
    returning diagnostics sorted by source position."""
    selected = list(RULES) if rules is None else list(rules)
    diagnostics: list[Diagnostic] = []
    for name in selected:
        fn = RULES[name]
        for function in context.module.functions.values():
            diagnostics.extend(fn(function, context))
    diagnostics.sort(key=lambda d: d.sort_key)
    return diagnostics


# ----------------------------------------------------------------------
# Built-in rules
# ----------------------------------------------------------------------


@rule("loop-carried-dependence")
def _loop_carried_dependence(
    function: Function, context: LintContext
) -> Iterator[Diagnostic]:
    for info in context.dependences.get(function.name, []):
        verdict = info.verdict
        if verdict.verdict not in (Verdict.DOACROSS_ONLY, Verdict.UNSAFE):
            continue
        severity = (
            Severity.ERROR
            if verdict.verdict is Verdict.UNSAFE
            else Severity.WARNING
        )
        for witness in verdict.witnesses:
            yield Diagnostic(
                rule="loop-carried-dependence",
                severity=severity,
                message=(
                    f"loop in '{function.name}' is not DOALL-safe: "
                    f"{witness.description}"
                ),
                span=_witness_span(witness),
                notes=list(witness.chain),
            )


def _witness_span(witness: DependenceWitness) -> SourceSpan | None:
    return witness.chain[0][1] if witness.chain else None


@rule("unused-result")
def _unused_result(
    function: Function, context: LintContext
) -> Iterator[Diagnostic]:
    rd = context.reaching[function.name]
    for block in function.blocks:
        for instr in block.instructions:
            if instr.result is None:
                continue
            if isinstance(
                instr, (Call, Copy, Alloca, RegionEnter, RegionExit)
            ):
                # Calls run for effect; copies are variable assignments
                # (write-never-read covers those); allocas declare storage.
                continue
            used = any(
                rd.uses_of.get(d)
                for d in rd.defs_of.get(instr.result, [])
                if d.instr is instr
            )
            if not used:
                yield Diagnostic(
                    rule="unused-result",
                    severity=Severity.WARNING,
                    message=(
                        f"result of this '{instr.opcode}' is never used"
                    ),
                    span=instr.span,
                )


@rule("pure-call-result-unused")
def _pure_call_result_unused(
    function: Function, context: LintContext
) -> Iterator[Diagnostic]:
    """A call whose only product is its return value, with that value
    never read: the call is dead work. Keys on the interprocedural
    summaries — impure calls (or calls without a summary) stay exempt,
    they may be evaluated for effect."""
    if context.summaries is None:
        return
    from repro.analysis.dependence import PURE_BUILTINS

    rd = context.reaching[function.name]
    for block in function.blocks:
        for instr in block.instructions:
            if not isinstance(instr, Call) or instr.result is None:
                continue
            if instr.is_builtin:
                if instr.callee not in PURE_BUILTINS:
                    continue
            else:
                summary = context.summaries.get(instr.callee)
                if summary is None or not summary.side_effect_free:
                    continue
            used = any(
                rd.uses_of.get(d)
                for d in rd.defs_of.get(instr.result, [])
                if d.instr is instr
            )
            if not used:
                yield Diagnostic(
                    rule="pure-call-result-unused",
                    severity=Severity.WARNING,
                    message=(
                        f"result of call to pure function "
                        f"'{instr.callee}' is never used"
                    ),
                    span=instr.span,
                )


@rule("write-never-read")
def _write_never_read(
    function: Function, context: LintContext
) -> Iterator[Diagnostic]:
    rd = context.reaching[function.name]
    # Named source variables: every def is a Copy (assignment); flag the
    # variable when no def is ever read.
    seen: set[Register] = set()
    for block in function.blocks:
        for instr in block.instructions:
            if not isinstance(instr, Copy) or instr.result is None:
                continue
            register = instr.result
            if register in seen or not register.name:
                continue
            seen.add(register)
            defs = rd.defs_of.get(register, [])
            if any(d.is_parameter for d in defs):
                continue
            if any(rd.uses_of.get(d) for d in defs):
                continue
            yield Diagnostic(
                rule="write-never-read",
                severity=Severity.WARNING,
                message=(
                    f"variable '{register.name}' is assigned but its "
                    "value is never read"
                ),
                span=instr.span,
            )


def _module_global_reads(module: Module) -> set[str]:
    reads: set[str] = set()
    for function in module.functions.values():
        for block in function.blocks:
            for instr in block.instructions:
                if isinstance(instr, Load) and isinstance(
                    instr.mem, GlobalRef
                ):
                    reads.add(instr.mem.name)
    return reads


@rule("global-write-never-read")
def _global_write_never_read(
    function: Function, context: LintContext
) -> Iterator[Diagnostic]:
    # Report once, from the module's first function, to avoid duplicates.
    first = next(iter(context.module.functions.values()), None)
    if function is not first:
        return
    reads = _module_global_reads(context.module)
    reported: set[str] = set()
    for fn in context.module.functions.values():
        for block in fn.blocks:
            for instr in block.instructions:
                if not isinstance(instr, Store):
                    continue
                if not isinstance(instr.mem, GlobalRef):
                    continue
                name = instr.mem.name
                if name in reads or name in reported:
                    continue
                reported.add(name)
                yield Diagnostic(
                    rule="global-write-never-read",
                    severity=Severity.WARNING,
                    message=(
                        f"global '{name}' is written but never read"
                    ),
                    span=instr.span,
                )


@rule("loop-invariant-store")
def _loop_invariant_store(
    function: Function, context: LintContext
) -> Iterator[Diagnostic]:
    for info in context.dependences.get(function.name, []):
        for witness in info.verdict.witnesses:
            if witness.kind != "invariant-address":
                continue
            store_spans = [
                span
                for role, span in witness.chain
                if role.startswith("store")
            ]
            if not store_spans:
                continue
            yield Diagnostic(
                rule="loop-invariant-store",
                severity=Severity.NOTE,
                message=(
                    "store writes the same address in every iteration "
                    "of the enclosing loop"
                ),
                span=store_spans[0],
            )
