"""Static analyses over the IR.

These passes play the role of LLVM's analyses in the paper's toolchain:
dominators and natural loops (region structure validation), postdominators
and control dependence (the static half of Kremlin's control-dependence
tracking, §4.1), and induction/reduction detection (dependence breaking).

On top of that scaffolding sits the static loop-dependence analyzer
(:mod:`~repro.analysis.dataflow`, :mod:`~repro.analysis.dependence`,
:mod:`~repro.analysis.verdict`) and the lint framework
(:mod:`~repro.analysis.lint`), driven per-module by
:func:`~repro.analysis.driver.analyze_module`. The analyzer confirms,
refutes, or qualifies every region the dynamic planner ranks — see
docs/ANALYSIS.md.
"""

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import (
    postorder,
    predecessor_map,
    reachable_blocks,
    reverse_postorder,
)
from repro.analysis.control_dependence import (
    ControlDependenceInfo,
    compute_control_dependence,
)
from repro.analysis.dataflow import (
    Definition,
    ReachingDefinitions,
    definitions_in_loop,
    upward_exposed_registers,
)
from repro.analysis.dependence import (
    DepClass,
    LoopDependenceInfo,
    analyze_function_dependences,
    function_purity,
    may_alias,
)
from repro.analysis.dominators import (
    DominatorTree,
    dominator_tree,
    postdominator_tree,
)
from repro.analysis.driver import (
    FunctionAnalysis,
    ModuleAnalysis,
    analyze_module,
    analyze_program,
)
from repro.analysis.induction import detect_ir_dep_breaks
from repro.analysis.lint import (
    RULES,
    Diagnostic,
    LintContext,
    Severity,
    rule,
    run_lint,
)
from repro.analysis.loops import Loop, LoopForest, find_natural_loops
from repro.analysis.static_cost import (
    Interval,
    RegionCost,
    compute_static_costs,
    costs_to_json,
    trip_interval,
)
from repro.analysis.summaries import (
    AccessRecord,
    FunctionSummary,
    ParamAffine,
    compute_module_summaries,
    summaries_to_json,
)
from repro.analysis.verdict import (
    UNKNOWN_TAG,
    DependenceWitness,
    RegionVerdict,
    Verdict,
    tag_is_safe,
    tag_rank,
    tag_reduction_vars,
    tag_refutes_doall,
    tag_verdict,
)

__all__ = [
    "RULES",
    "UNKNOWN_TAG",
    "AccessRecord",
    "CallGraph",
    "ControlDependenceInfo",
    "Definition",
    "DepClass",
    "DependenceWitness",
    "Diagnostic",
    "DominatorTree",
    "FunctionAnalysis",
    "FunctionSummary",
    "Interval",
    "LintContext",
    "Loop",
    "LoopDependenceInfo",
    "LoopForest",
    "ModuleAnalysis",
    "ParamAffine",
    "ReachingDefinitions",
    "RegionCost",
    "RegionVerdict",
    "Severity",
    "Verdict",
    "analyze_function_dependences",
    "analyze_module",
    "analyze_program",
    "build_call_graph",
    "compute_control_dependence",
    "compute_module_summaries",
    "compute_static_costs",
    "costs_to_json",
    "definitions_in_loop",
    "detect_ir_dep_breaks",
    "dominator_tree",
    "find_natural_loops",
    "function_purity",
    "may_alias",
    "postdominator_tree",
    "postorder",
    "predecessor_map",
    "reachable_blocks",
    "reverse_postorder",
    "rule",
    "run_lint",
    "summaries_to_json",
    "tag_is_safe",
    "tag_rank",
    "tag_reduction_vars",
    "tag_refutes_doall",
    "tag_verdict",
    "trip_interval",
    "upward_exposed_registers",
]
