"""Static analyses over the IR.

These passes play the role of LLVM's analyses in the paper's toolchain:
dominators and natural loops (region structure validation), postdominators
and control dependence (the static half of Kremlin's control-dependence
tracking, §4.1), and induction/reduction detection (dependence breaking).

On top of that scaffolding sits the static loop-dependence analyzer
(:mod:`~repro.analysis.dataflow`, :mod:`~repro.analysis.dependence`,
:mod:`~repro.analysis.verdict`) and the lint framework
(:mod:`~repro.analysis.lint`), driven per-module by
:func:`~repro.analysis.driver.analyze_module`. The analyzer confirms,
refutes, or qualifies every region the dynamic planner ranks — see
docs/ANALYSIS.md.
"""

from repro.analysis.cfg import (
    postorder,
    predecessor_map,
    reachable_blocks,
    reverse_postorder,
)
from repro.analysis.control_dependence import (
    ControlDependenceInfo,
    compute_control_dependence,
)
from repro.analysis.dataflow import (
    Definition,
    ReachingDefinitions,
    definitions_in_loop,
    upward_exposed_registers,
)
from repro.analysis.dependence import (
    DepClass,
    LoopDependenceInfo,
    analyze_function_dependences,
    function_purity,
    may_alias,
)
from repro.analysis.dominators import (
    DominatorTree,
    dominator_tree,
    postdominator_tree,
)
from repro.analysis.driver import (
    FunctionAnalysis,
    ModuleAnalysis,
    analyze_module,
    analyze_program,
)
from repro.analysis.induction import detect_ir_dep_breaks
from repro.analysis.lint import (
    RULES,
    Diagnostic,
    LintContext,
    Severity,
    rule,
    run_lint,
)
from repro.analysis.loops import Loop, LoopForest, find_natural_loops
from repro.analysis.verdict import (
    UNKNOWN_TAG,
    DependenceWitness,
    RegionVerdict,
    Verdict,
    tag_is_safe,
    tag_rank,
    tag_reduction_vars,
    tag_refutes_doall,
    tag_verdict,
)

__all__ = [
    "RULES",
    "UNKNOWN_TAG",
    "ControlDependenceInfo",
    "Definition",
    "DepClass",
    "DependenceWitness",
    "Diagnostic",
    "DominatorTree",
    "FunctionAnalysis",
    "LintContext",
    "Loop",
    "LoopDependenceInfo",
    "LoopForest",
    "ModuleAnalysis",
    "ReachingDefinitions",
    "RegionVerdict",
    "Severity",
    "Verdict",
    "analyze_function_dependences",
    "analyze_module",
    "analyze_program",
    "compute_control_dependence",
    "definitions_in_loop",
    "detect_ir_dep_breaks",
    "dominator_tree",
    "find_natural_loops",
    "function_purity",
    "may_alias",
    "postdominator_tree",
    "postorder",
    "predecessor_map",
    "reachable_blocks",
    "reverse_postorder",
    "rule",
    "run_lint",
    "tag_is_safe",
    "tag_rank",
    "tag_reduction_vars",
    "tag_refutes_doall",
    "tag_verdict",
    "upward_exposed_registers",
]
