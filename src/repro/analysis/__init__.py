"""Static analyses over the IR.

These passes play the role of LLVM's analyses in the paper's toolchain:
dominators and natural loops (region structure validation), postdominators
and control dependence (the static half of Kremlin's control-dependence
tracking, §4.1), and induction/reduction detection (dependence breaking).
"""

from repro.analysis.cfg import (
    postorder,
    predecessor_map,
    reachable_blocks,
    reverse_postorder,
)
from repro.analysis.control_dependence import (
    ControlDependenceInfo,
    compute_control_dependence,
)
from repro.analysis.dominators import (
    DominatorTree,
    dominator_tree,
    postdominator_tree,
)
from repro.analysis.induction import detect_ir_dep_breaks
from repro.analysis.loops import Loop, LoopForest, find_natural_loops

__all__ = [
    "ControlDependenceInfo",
    "DominatorTree",
    "Loop",
    "LoopForest",
    "compute_control_dependence",
    "detect_ir_dep_breaks",
    "dominator_tree",
    "find_natural_loops",
    "postdominator_tree",
    "postorder",
    "predecessor_map",
    "reachable_blocks",
    "reverse_postorder",
]
