"""Classic per-function dataflow: reaching definitions and def-use chains.

The IR is deliberately *not* SSA — lowering gives every source variable one
virtual register and assignments are ``copy`` instructions — so the
dependence classifier needs honest iterative dataflow to know which write
of a register a given read can observe. This module provides:

* :class:`ReachingDefinitions` — the textbook gen/kill fixpoint over the
  CFG, exposing per-block reach-in sets and use-def chains;
* :func:`upward_exposed_registers` — the registers a natural loop may read
  *before* writing them in an iteration, i.e. exactly the candidates for a
  loop-carried scalar dependence flowing around the back edge.

Function parameters are modeled as definitions at the entry block (a
synthetic :class:`Definition` with ``instr=None``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import predecessor_map, reverse_postorder
from repro.analysis.loops import Loop
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.values import Register


@dataclass(frozen=True)
class Definition:
    """One write of a register: an instruction result, or a parameter
    (``instr is None``, defined at function entry)."""

    register: Register
    block: BasicBlock | None
    instr: Instruction | None

    @property
    def is_parameter(self) -> bool:
        return self.instr is None

    def __repr__(self) -> str:
        where = "param" if self.is_parameter else self.instr.opcode
        return f"<def {self.register!r} @ {where}>"


def _register_uses(owner) -> list[Register]:
    """Register operands of an instruction or terminator."""
    return [op for op in owner.operands if isinstance(op, Register)]


class ReachingDefinitions:
    """Reaching definitions + def-use chains for one function."""

    def __init__(self, function: Function):
        self.function = function
        #: every definition of each register, in layout order
        self.defs_of: dict[Register, list[Definition]] = {}
        #: definitions reaching the *top* of each block
        self.reach_in: dict[BasicBlock, frozenset[Definition]] = {}
        #: (instruction or terminator) -> {register -> reaching defs}
        self._use_defs: dict[int, dict[Register, frozenset[Definition]]] = {}
        #: Definition -> instructions/terminators that may observe it
        self.uses_of: dict[Definition, list] = {}
        self._compute()

    # ------------------------------------------------------------------

    def _compute(self) -> None:
        function = self.function
        entry = function.entry

        param_defs = [
            Definition(param, entry, None) for param in function.params
        ]
        for definition in param_defs:
            self.defs_of.setdefault(definition.register, []).append(definition)

        block_defs: dict[BasicBlock, list[Definition]] = {}
        for block in function.blocks:
            defs: list[Definition] = []
            for instr in block.instructions:
                if instr.result is not None:
                    definition = Definition(instr.result, block, instr)
                    defs.append(definition)
                    self.defs_of.setdefault(instr.result, []).append(
                        definition
                    )
            block_defs[block] = defs

        # gen: last def of each register in the block; kill: all other defs
        # of registers the block writes.
        gen: dict[BasicBlock, frozenset[Definition]] = {}
        kill: dict[BasicBlock, frozenset[Definition]] = {}
        for block in function.blocks:
            last: dict[Register, Definition] = {}
            for definition in block_defs[block]:
                last[definition.register] = definition
            gen[block] = frozenset(last.values())
            killed: set[Definition] = set()
            for register in last:
                killed.update(self.defs_of[register])
            kill[block] = frozenset(killed - gen[block])

        preds = predecessor_map(function)
        order = reverse_postorder(function)
        reach_in: dict[BasicBlock, frozenset[Definition]] = {
            block: frozenset() for block in order
        }
        reach_in[entry] = frozenset(param_defs)
        reach_out: dict[BasicBlock, frozenset[Definition]] = {
            block: frozenset() for block in order
        }

        changed = True
        while changed:
            changed = False
            for block in order:
                incoming: set[Definition] = set(
                    param_defs if block is entry else ()
                )
                for pred in preds.get(block, []):
                    incoming.update(reach_out[pred])
                frozen_in = frozenset(incoming)
                out = frozenset((frozen_in - kill[block]) | gen[block])
                if frozen_in != reach_in[block] or out != reach_out[block]:
                    reach_in[block] = frozen_in
                    reach_out[block] = out
                    changed = True
        self.reach_in = reach_in

        # One forward walk per block builds the use-def chains.
        for block in order:
            live: dict[Register, set[Definition]] = {}
            for definition in reach_in[block]:
                live.setdefault(definition.register, set()).add(definition)
            for owner in [*block.instructions, block.terminator]:
                if owner is None:
                    continue
                used = _register_uses(owner)
                if used:
                    self._use_defs[id(owner)] = {
                        register: frozenset(live.get(register, ()))
                        for register in used
                    }
                    for register in used:
                        for definition in live.get(register, ()):
                            self.uses_of.setdefault(definition, []).append(
                                owner
                            )
                result = getattr(owner, "result", None)
                if result is not None:
                    live[result] = {
                        d
                        for d in self.defs_of[result]
                        if d.instr is owner
                    }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def reaching(self, owner, register: Register) -> frozenset[Definition]:
        """Definitions of ``register`` that may reach a use at ``owner``
        (an instruction or terminator that actually uses it)."""
        return self._use_defs.get(id(owner), {}).get(register, frozenset())

    def reaching_at_block(
        self, block: BasicBlock, register: Register
    ) -> frozenset[Definition]:
        """Definitions of ``register`` reaching the top of ``block``."""
        return frozenset(
            d for d in self.reach_in.get(block, frozenset())
            if d.register is register
        )

    def external_reaching(
        self, loop: Loop, register: Register
    ) -> frozenset[Definition]:
        """Definitions of ``register`` from *outside* ``loop`` that reach
        the loop header — the values the first iteration can observe."""
        return frozenset(
            d
            for d in self.reaching_at_block(loop.header, register)
            if d.block not in loop.blocks or d.is_parameter
        )


def upward_exposed_registers(loop: Loop) -> set[Register]:
    """Registers some path from the loop header may *read before writing*.

    A register written inside the loop that is also upward-exposed reads
    the previous iteration's value around the back edge — the scalar
    loop-carried candidates. Computed as a backward union fixpoint over the
    loop's own blocks: ``exposed(B) = local_ue(B) ∪ (⋃ exposed(succ∩loop)
    − defs(B))``.
    """
    local_ue: dict[BasicBlock, set[Register]] = {}
    defs: dict[BasicBlock, set[Register]] = {}
    for block in loop.blocks:
        written: set[Register] = set()
        exposed: set[Register] = set()
        for owner in [*block.instructions, block.terminator]:
            if owner is None:
                continue
            for register in _register_uses(owner):
                if register not in written:
                    exposed.add(register)
            result = getattr(owner, "result", None)
            if result is not None:
                written.add(result)
        local_ue[block] = exposed
        defs[block] = written

    exposed_at: dict[BasicBlock, set[Register]] = {
        block: set(local_ue[block]) for block in loop.blocks
    }
    changed = True
    while changed:
        changed = False
        for block in loop.blocks:
            incoming: set[Register] = set()
            for successor in block.successors:
                if successor in loop.blocks:
                    incoming.update(exposed_at[successor])
            combined = local_ue[block] | (incoming - defs[block])
            if combined != exposed_at[block]:
                exposed_at[block] = combined
                changed = True
    return exposed_at[loop.header]


def definitions_in_loop(
    rd: ReachingDefinitions, loop: Loop
) -> dict[Register, list[Definition]]:
    """Registers written inside ``loop``, with their in-loop definitions."""
    out: dict[Register, list[Definition]] = {}
    for register, definitions in rd.defs_of.items():
        inside = [
            d for d in definitions
            if not d.is_parameter and d.block in loop.blocks
        ]
        if inside:
            out[register] = inside
    return out
