"""Interprocedural mod/ref summaries ("static Kremlin", part 1).

One bottom-up pass over the call graph's SCC condensation computes, for
every user function, *which* memory it reads and writes — globals and
array parameters — and *where* inside those objects, as affine index
summaries over the function's own parameters. Call-bearing loops then
get real dependence verdicts: the classifier rebinds a callee's summary
through the call-site argument map and feeds the resulting accesses into
the ordinary affine subscript test, instead of collapsing every call to
the binary pure/impure fixpoint.

The summary lattice, per function::

    PURE          no memory effects at all (callable anywhere)
    RECORDS       a finite set of AccessRecords, each either
                    - affine: index = const + Σ coeff·param_k + [lo,hi]
                      (the slack interval absorbs bounded callee-local
                      loop variables), or
                    - taint: the whole object may be touched (index None)
    TOP           effects not enumerable (recursive SCC with effects,
                  unresolvable object, record blow-up)
    IMPURE        observable ordering effects (RNG, I/O) — on top of any
                  of the above

``TOP`` and ``IMPURE`` calls keep the old behavior (an ``impure-call``
witness). ``RECORDS`` calls are *transparent*: their effects become
synthetic accesses of the calling loop, and witness chains walk through
the call site into the callee (``caller.c:12 → callee writes g[i]``).

Every :class:`AccessRecord` carries a ``trace`` — the witness-chain
suffix describing the access inside (possibly nested) callees — so a
diagnostic can show the full interprocedural path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.dataflow import ReachingDefinitions
from repro.analysis.loops import find_natural_loops
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Copy,
    Load,
    REDUCTION_OPS,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import ArrayType
from repro.ir.values import Constant, GlobalRef, Register, Value

#: cap on enumerable records per function; beyond this the summary
#: degrades to per-object taint records (still sound, less precise)
MAX_RECORDS = 64


# ----------------------------------------------------------------------
# Index summaries: affine over the summarized function's parameters
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ParamAffine:
    """``const + Σ coeff·param_k + [lo, hi]`` slack.

    The slack interval absorbs every bounded non-parameter contribution
    (typically a callee-local loop variable with a known value range);
    it is sampled *independently per call*, which is exactly how the
    dependence test must treat a callee's internal loop re-running on
    every iteration of the calling loop.
    """

    #: sorted ``(param_index, coeff)`` pairs, coeff != 0
    terms: tuple[tuple[int, int], ...] = ()
    const: int = 0
    lo: int = 0
    hi: int = 0

    @property
    def has_slack(self) -> bool:
        return (self.lo, self.hi) != (0, 0)

    def plus(self, other: "ParamAffine") -> "ParamAffine":
        coeffs = dict(self.terms)
        for k, c in other.terms:
            new = coeffs.get(k, 0) + c
            if new == 0:
                coeffs.pop(k, None)
            else:
                coeffs[k] = new
        return ParamAffine(
            terms=tuple(sorted(coeffs.items())),
            const=self.const + other.const,
            lo=self.lo + other.lo,
            hi=self.hi + other.hi,
        )

    def scaled(self, factor: int) -> "ParamAffine":
        if factor == 0:
            return ParamAffine()
        ends = (self.lo * factor, self.hi * factor)
        return ParamAffine(
            terms=tuple(
                sorted((k, c * factor) for k, c in self.terms)
            ),
            const=self.const * factor,
            lo=min(ends),
            hi=max(ends),
        )

    def widened(self, lo: int, hi: int) -> "ParamAffine":
        return replace(self, lo=self.lo + lo, hi=self.hi + hi)

    def render(self, param_names: tuple[str, ...] = ()) -> str:
        parts: list[str] = []
        for k, c in self.terms:
            name = (
                param_names[k]
                if k < len(param_names)
                else f"arg{k}"
            )
            if c == 1:
                parts.append(name)
            else:
                parts.append(f"{c}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        text = "+".join(parts).replace("+-", "-")
        if self.has_slack:
            text += f"+[{self.lo},{self.hi}]"
        return text


def rebind(
    index: ParamAffine | None, arguments: list["ParamAffine | None"]
) -> ParamAffine | None:
    """Rebind a callee index summary through a call-site argument map.

    ``arguments[k]`` is the affine image of the call's ``k``-th argument
    in the *caller's* parameter space (None = non-affine). Any
    non-affine argument with a non-zero coefficient degrades the whole
    index to taint.
    """
    if index is None:
        return None
    acc = ParamAffine(const=index.const, lo=index.lo, hi=index.hi)
    for k, coeff in index.terms:
        arg = arguments[k] if k < len(arguments) else None
        if arg is None:
            return None
        acc = acc.plus(arg.scaled(coeff))
    return acc


# ----------------------------------------------------------------------
# Records and summaries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AccessRecord:
    """One summarized memory effect of a function."""

    #: ``('global', name)`` or ``('param', index)``
    target: tuple[str, object]
    is_store: bool
    #: element type of the accessed object (cell type for scalars)
    element: object = None
    is_array: bool = False
    #: affine index summary, or None = taint (whole object)
    index: ParamAffine | None = None
    #: normalized reduction operator when this access is half of a
    #: recognized ``g = g ⊕ v`` update on a global scalar cell
    reduction_op: str | None = None
    #: witness-chain suffix: ``(role, span)`` hops inside the callee(s)
    trace: tuple = ()

    def describe(self, param_names: tuple[str, ...] = ()) -> str:
        if self.target[0] == "global":
            obj = f"@{self.target[1]}"
        else:
            k = self.target[1]
            obj = (
                param_names[k]
                if isinstance(k, int) and k < len(param_names)
                else f"arg{k}"
            )
        mode = "writes" if self.is_store else "reads"
        if self.reduction_op is not None:
            mode = f"reduces({self.reduction_op})"
        if not self.is_array:
            return f"{mode} {obj}"
        subscript = (
            "*" if self.index is None else self.index.render(param_names)
        )
        return f"{mode} {obj}[{subscript}]"


@dataclass
class FunctionSummary:
    """The interprocedural summary of one user function."""

    name: str
    #: parameter source names, for rendering index summaries
    param_names: tuple[str, ...] = ()
    records: tuple[AccessRecord, ...] = ()
    #: effects not enumerable: treat as touching everything
    top: bool = False
    #: observable ordering effects (RNG / I/O), directly or via callees
    impure: bool = False
    #: old-style call purity: no memory effects and no array params
    pure: bool = False
    reasons: tuple[str, ...] = ()

    @property
    def transparent(self) -> bool:
        """Calls can be summarized away into the caller's access set."""
        return not (self.top or self.impure)

    @property
    def side_effect_free(self) -> bool:
        """No writes and no ordering effects: the call's only product is
        its return value (the lint dead-value rule keys on this)."""
        return self.transparent and not any(
            r.is_store for r in self.records
        )

    def describe(self) -> str:
        if self.top:
            return "top (unanalyzable effects)"
        flags = []
        if self.impure:
            flags.append("impure")
        if self.pure:
            flags.append("pure")
        # dedupe: a reduction's read and write records describe identically
        described = list(
            dict.fromkeys(r.describe(self.param_names) for r in self.records)
        )
        body = ", ".join(described) or "no memory effects"
        return body + (f"; {' '.join(flags)}" if flags else "")

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "params": list(self.param_names),
            "pure": self.pure,
            "top": self.top,
            "impure": self.impure,
            "reasons": list(self.reasons),
            "accesses": [
                {
                    "object": (
                        f"@{r.target[1]}"
                        if r.target[0] == "global"
                        else f"param:{r.target[1]}"
                    ),
                    "mode": (
                        f"reduce({r.reduction_op})"
                        if r.reduction_op
                        else ("write" if r.is_store else "read")
                    ),
                    "index": (
                        None
                        if r.index is None
                        else r.index.render(self.param_names)
                    ),
                    "array": r.is_array,
                }
                for r in self.records
            ],
        }


def summaries_to_json(
    summaries: dict[str, "FunctionSummary"]
) -> list[dict]:
    return [summaries[name].to_json() for name in sorted(summaries)]


# ----------------------------------------------------------------------
# Per-function index resolution
# ----------------------------------------------------------------------


class _IndexResolver:
    """Resolve index values to :class:`ParamAffine` inside one function."""

    def __init__(self, function: Function, rd: ReachingDefinitions):
        self.function = function
        self.rd = rd
        self.param_index = {
            register: k for k, register in enumerate(function.params)
        }
        #: register -> (lo, hi, loop) for bounded loop induction variables
        self.bounds: dict[Register, tuple[int, int, object]] = {}
        #: instruction -> containing block (loop membership checks)
        self.block_of: dict[int, object] = {}
        for block in function.blocks:
            for instr in block.instructions:
                self.block_of[id(instr)] = block
            if block.terminator is not None:
                self.block_of[id(block.terminator)] = block
        from repro.analysis.dependence import _detect_inductions

        for loop in find_natural_loops(function).loops:
            for register, ind in _detect_inductions(loop, rd).items():
                if ind.lo is not None and ind.hi is not None:
                    self.bounds[register] = (ind.lo, ind.hi, loop)

    def _bounded(self, register: Register, owner) -> ParamAffine | None:
        """Interval image of a bounded loop variable, valid only for
        uses inside that loop (outside it holds its exit value)."""
        bound = self.bounds.get(register)
        if bound is None:
            return None
        lo, hi, loop = bound
        block = self.block_of.get(id(owner))
        if block is None or block not in loop.blocks:
            return None
        return ParamAffine(lo=lo, hi=hi)

    def affine(
        self, value: Value, owner, _visiting: frozenset = frozenset()
    ) -> ParamAffine | None:
        if isinstance(value, Constant):
            if isinstance(value.value, int):
                return ParamAffine(const=value.value)
            return None
        if not isinstance(value, Register):
            return None
        register = value
        defs = self.rd.reaching(owner, register)
        if len(defs) != 1:
            return self._bounded(register, owner)
        definition = next(iter(defs))
        if definition in _visiting:
            return self._bounded(register, owner)
        if definition.is_parameter:
            return ParamAffine(terms=((self.param_index[register], 1),))
        instr = definition.instr
        visiting = _visiting | {definition}
        if isinstance(instr, Copy):
            out = self.affine(instr.operand, instr, visiting)
        elif isinstance(instr, BinOp) and instr.op in ("+", "-", "*"):
            lhs = self.affine(instr.lhs, instr, visiting)
            rhs = self.affine(instr.rhs, instr, visiting)
            out = None
            if lhs is not None and rhs is not None:
                if instr.op == "+":
                    out = lhs.plus(rhs)
                elif instr.op == "-":
                    out = lhs.plus(rhs.scaled(-1))
                elif not rhs.terms and not rhs.has_slack:
                    out = lhs.scaled(rhs.const)
                elif not lhs.terms and not lhs.has_slack:
                    out = rhs.scaled(lhs.const)
        else:
            out = None
        if out is None:
            return self._bounded(register, owner)
        return out


# ----------------------------------------------------------------------
# Summary computation (bottom-up over SCCs)
# ----------------------------------------------------------------------


def _roles(is_store: bool) -> str:
    return "writes" if is_store else "reads"


def _direct_effect_free(function: Function) -> tuple[bool, str]:
    """Old-style direct purity: the conditions a function must meet on
    its own (callees are checked by the SCC pass)."""
    if any(isinstance(p.type, ArrayType) for p in function.params):
        return False, "takes an array parameter"
    for block in function.blocks:
        for instr in block.instructions:
            if isinstance(instr, (Load, Store)) and isinstance(
                instr.mem, GlobalRef
            ):
                return False, "touches global state"
            if isinstance(instr, Call) and instr.is_builtin:
                from repro.analysis.dependence import PURE_BUILTINS

                if instr.callee not in PURE_BUILTINS:
                    return False, f"calls impure builtin '{instr.callee}'"
    return True, ""


def _global_reductions(
    function: Function, rd: ReachingDefinitions
) -> dict[int, str]:
    """``id(instr) -> op`` for Load/Store halves of ``g = g ⊕ v``
    updates on global scalar cells (candidates; the caller-side check
    still requires the cell to have no other accesses in the loop)."""
    out: dict[int, str] = {}
    for block in function.blocks:
        for instr in block.instructions:
            if not isinstance(instr, Store) or instr.index is not None:
                continue
            if not isinstance(instr.mem, GlobalRef):
                continue
            if not isinstance(instr.value, Register):
                continue
            defs = rd.reaching(instr, instr.value)
            if len(defs) != 1:
                continue
            update = next(iter(defs)).instr
            if not isinstance(update, BinOp):
                continue
            if (
                update.dep_break != "reduction"
                and update.op not in REDUCTION_OPS
            ):
                continue
            for operand in (update.lhs, update.rhs):
                if not isinstance(operand, Register):
                    continue
                odefs = rd.reaching(update, operand)
                if len(odefs) != 1:
                    continue
                old = next(iter(odefs)).instr
                if (
                    isinstance(old, Load)
                    and old.index is None
                    and isinstance(old.mem, GlobalRef)
                    and old.mem.name == instr.mem.name
                ):
                    op = "+" if update.op in ("+", "-") else update.op
                    out[id(instr)] = op
                    out[id(old)] = op
                    break
    return out


def _compress(records: list[AccessRecord]) -> list[AccessRecord]:
    """Degrade an oversized record set to per-object taint (sound)."""
    seen: dict[tuple, AccessRecord] = {}
    for record in records:
        key = (record.target, record.is_store)
        if key not in seen:
            seen[key] = replace(
                record, index=None, reduction_op=None
            )
    return list(seen.values())


def _summarize_function(
    function: Function,
    summaries: dict[str, FunctionSummary],
) -> FunctionSummary:
    rd = ReachingDefinitions(function)
    resolver = _IndexResolver(function, rd)
    reductions = _global_reductions(function, rd)
    summary = FunctionSummary(
        name=function.name,
        param_names=tuple(
            p.name or f"arg{k}" for k, p in enumerate(function.params)
        ),
    )
    records: list[AccessRecord] = []
    reasons: list[str] = []
    top = False
    impure = False

    def object_record(
        mem: Value, owner
    ) -> tuple[tuple[str, object] | None, object, bool, bool]:
        """``(target, element, is_array, skip)`` for a direct access."""
        is_array = isinstance(mem.type, ArrayType)
        element = mem.type.element if is_array else mem.type
        if isinstance(mem, GlobalRef):
            return ("global", mem.name), element, is_array, False
        if isinstance(mem, Register):
            if mem in resolver.param_index:
                return (
                    ("param", resolver.param_index[mem]),
                    element,
                    is_array,
                    False,
                )
            defs = rd.defs_of.get(mem, [])
            if len(defs) == 1 and isinstance(defs[0].instr, Alloca):
                return None, element, is_array, True  # private storage
        return None, element, is_array, False  # unresolvable

    from repro.analysis.dependence import PURE_BUILTINS

    for block in function.blocks:
        for instr in block.instructions:
            if isinstance(instr, (Load, Store)):
                target, element, is_array, skip = object_record(
                    instr.mem, instr
                )
                if skip:
                    continue
                if target is None:
                    top = True
                    reasons.append("access to unresolvable object")
                    continue
                is_store = isinstance(instr, Store)
                if instr.index is None:
                    index: ParamAffine | None = ParamAffine()
                else:
                    index = resolver.affine(instr.index, instr)
                obj = (
                    f"@{target[1]}"
                    if target[0] == "global"
                    else summary.param_names[target[1]]
                    if target[1] < len(summary.param_names)
                    else f"arg{target[1]}"
                )
                records.append(
                    AccessRecord(
                        target=target,
                        is_store=is_store,
                        element=element,
                        is_array=is_array,
                        index=index,
                        reduction_op=reductions.get(id(instr)),
                        trace=(
                            (
                                f"'{function.name}' {_roles(is_store)} "
                                f"{obj} here",
                                instr.span,
                            ),
                        ),
                    )
                )
            elif isinstance(instr, Call):
                if instr.is_builtin:
                    if instr.callee not in PURE_BUILTINS:
                        impure = True
                        reasons.append(
                            f"calls impure builtin '{instr.callee}'"
                        )
                    continue
                callee = summaries.get(instr.callee)
                if callee is None:
                    # recursive edge back into this SCC: handled by the
                    # component-level bail-out before we get here
                    top = True
                    reasons.append(
                        f"call into unresolved '{instr.callee}'"
                    )
                    continue
                if callee.impure:
                    impure = True
                    reasons.append(f"calls impure '{instr.callee}'")
                if callee.top:
                    top = True
                    reasons.append(
                        f"calls '{instr.callee}' with unanalyzable "
                        "effects"
                    )
                if callee.top or callee.impure:
                    continue
                arguments = [
                    resolver.affine(arg, instr) for arg in instr.args
                ]
                for record in callee.records:
                    target = record.target
                    if target[0] == "param":
                        k = target[1]
                        arg = (
                            instr.args[k]
                            if isinstance(k, int) and k < len(instr.args)
                            else None
                        )
                        mapped, element, is_array, skip = (
                            object_record(arg, instr)
                            if arg is not None
                            else (None, None, False, False)
                        )
                        if skip:
                            continue  # caller-private storage
                        if mapped is None:
                            top = True
                            reasons.append(
                                f"array argument to '{instr.callee}' "
                                "is unresolvable"
                            )
                            continue
                        target = mapped
                    records.append(
                        replace(
                            record,
                            target=target,
                            index=rebind(record.index, arguments),
                            trace=(
                                (
                                    f"call to '{instr.callee}' here",
                                    instr.span,
                                ),
                                *record.trace,
                            ),
                        )
                    )

    if len(records) > MAX_RECORDS:
        records = _compress(records)
        reasons.append("record set compressed to per-object taint")
    summary.records = tuple(records)
    summary.top = top
    summary.impure = impure
    summary.reasons = tuple(dict.fromkeys(reasons))
    return summary


def compute_module_summaries(
    module: Module, graph: CallGraph | None = None
) -> dict[str, FunctionSummary]:
    """Bottom-up mod/ref summaries for every function in ``module``."""
    graph = graph or build_call_graph(module)
    summaries: dict[str, FunctionSummary] = {}
    for component in graph.sccs():
        members = [
            name for name in component if name in module.functions
        ]
        if not members:
            continue
        recursive = len(component) > 1 or any(
            name in graph.callees.get(name, set()) for name in members
        )
        if recursive:
            effect_free = all(
                _direct_effect_free(module.functions[name])[0]
                and all(
                    callee in component
                    or summaries.get(
                        callee, FunctionSummary(callee)
                    ).pure
                    for callee in graph.callees.get(name, set())
                )
                for name in members
            )
            for name in members:
                if effect_free:
                    summaries[name] = FunctionSummary(
                        name=name,
                        param_names=tuple(
                            p.name or f"arg{k}"
                            for k, p in enumerate(
                                module.functions[name].params
                            )
                        ),
                        pure=True,
                    )
                else:
                    summaries[name] = FunctionSummary(
                        name=name,
                        top=True,
                        reasons=(
                            "recursive call cycle with memory effects",
                        ),
                    )
            continue
        name = members[0]
        summary = _summarize_function(module.functions[name], summaries)
        summary.pure = (
            not summary.top
            and not summary.impure
            and not summary.records
            and not any(
                isinstance(p.type, ArrayType)
                for p in module.functions[name].params
            )
        )
        summaries[name] = summary
    return summaries
