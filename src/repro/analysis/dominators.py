"""Dominator and postdominator trees (Cooper–Harvey–Kennedy algorithm).

The postdominator computation introduces a virtual exit node (``None``)
joining all return blocks, so functions with several returns — or loops whose
only exits are ``return`` statements — still have a well-defined tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.analysis.cfg import exit_blocks, postorder, predecessor_map
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function

Node = Hashable  # BasicBlock, or None for the virtual exit


@dataclass
class DominatorTree:
    """Immediate-dominator mapping plus derived queries.

    ``idom[entry] is entry`` by convention; every other reachable node maps
    to its immediate dominator.
    """

    entry: Node
    idom: dict[Node, Node]
    _children: dict[Node, list[Node]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._children = {node: [] for node in self.idom}
        for node, parent in self.idom.items():
            if node is not self.entry:
                self._children[parent].append(node)

    def dominates(self, a: Node, b: Node) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        current = b
        while True:
            if current is a:
                return True
            if current is self.entry or current not in self.idom:
                return a is current
            parent = self.idom[current]
            if parent is current:
                return a is current
            current = parent

    def strictly_dominates(self, a: Node, b: Node) -> bool:
        return a is not b and self.dominates(a, b)

    def children(self, node: Node) -> list[Node]:
        return self._children.get(node, [])

    def depth(self, node: Node) -> int:
        depth = 0
        current = node
        while current is not self.entry:
            current = self.idom[current]
            depth += 1
        return depth


def _chk(
    nodes: list[Node],
    entry: Node,
    preds: dict[Node, list[Node]],
) -> dict[Node, Node]:
    """Cooper–Harvey–Kennedy iterative dominator computation.

    ``nodes`` must be in reverse postorder with ``entry`` first.
    """
    order_index = {node: i for i, node in enumerate(nodes)}
    idom: dict[Node, Node] = {entry: entry}

    def intersect(a: Node, b: Node) -> Node:
        while a is not b:
            while order_index[a] > order_index[b]:
                a = idom[a]
            while order_index[b] > order_index[a]:
                b = idom[b]
        return a

    changed = True
    missing = object()  # distinguish "unassigned" from the None exit node
    while changed:
        changed = False
        for node in nodes[1:]:
            candidates = [p for p in preds.get(node, []) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(node, missing) is not new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominator_tree(function: Function) -> DominatorTree:
    """Dominator tree over the reachable blocks of ``function``."""
    nodes: list[Node] = list(reversed(postorder(function)))
    preds_raw = predecessor_map(function)
    preds: dict[Node, list[Node]] = {k: list(v) for k, v in preds_raw.items()}
    idom = _chk(nodes, function.entry, preds)
    return DominatorTree(entry=function.entry, idom=idom)


def postdominator_tree(function: Function) -> DominatorTree:
    """Postdominator tree with a virtual exit node (``None``).

    Unreachable-in-reverse blocks (e.g. bodies of genuinely infinite loops)
    are absent from the mapping; callers must treat a missing node as
    "postdominated only by the virtual exit".
    """
    # Build the reverse CFG: successors become predecessors and the virtual
    # exit None precedes every return block (in reverse orientation).
    returns = exit_blocks(function)
    reverse_succs: dict[Node, list[Node]] = {None: list(returns)}
    reverse_preds: dict[Node, list[Node]] = {None: []}
    for block in predecessor_map(function):
        reverse_succs.setdefault(block, [])
        reverse_preds.setdefault(block, [])
    for block in list(reverse_succs):
        if block is None:
            continue
        for successor in block.successors:
            reverse_succs.setdefault(successor, [])
            reverse_succs[successor].append(block)
            reverse_preds.setdefault(block, [])
            reverse_preds[block].append(successor)
    for block in returns:
        reverse_preds[block].append(None)

    # Postorder of the reverse CFG starting from the virtual exit.
    seen: set[int] = {id(None)}
    order: list[Node] = []
    stack: list[tuple[Node, int]] = [(None, 0)]
    while stack:
        node, index = stack[-1]
        successors = reverse_succs.get(node, [])
        if index < len(successors):
            stack[-1] = (node, index + 1)
            nxt = successors[index]
            if id(nxt) not in seen:
                seen.add(id(nxt))
                stack.append((nxt, 0))
        else:
            stack.pop()
            order.append(node)
    nodes = list(reversed(order))  # reverse postorder of reverse CFG

    idom = _chk(nodes, None, reverse_preds)
    return DominatorTree(entry=None, idom=idom)
