"""Control-flow-graph utilities shared by the other analyses."""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


def reachable_blocks(function: Function) -> list[BasicBlock]:
    """Blocks reachable from entry, in discovery (DFS preorder) order."""
    seen: set[int] = set()
    out: list[BasicBlock] = []
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        out.append(block)
        stack.extend(reversed(block.successors))
    return out


def predecessor_map(function: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Predecessors of every reachable block."""
    preds: dict[BasicBlock, list[BasicBlock]] = {
        block: [] for block in reachable_blocks(function)
    }
    for block in preds:
        for successor in block.successors:
            preds[successor].append(block)
    return preds


def postorder(function: Function) -> list[BasicBlock]:
    """DFS postorder over reachable blocks (iterative, deterministic)."""
    seen: set[int] = set()
    out: list[BasicBlock] = []
    # (block, next-successor-index) stack
    stack: list[tuple[BasicBlock, int]] = [(function.entry, 0)]
    seen.add(id(function.entry))
    while stack:
        block, index = stack[-1]
        successors = block.successors
        if index < len(successors):
            stack[-1] = (block, index + 1)
            successor = successors[index]
            if id(successor) not in seen:
                seen.add(id(successor))
                stack.append((successor, 0))
        else:
            stack.pop()
            out.append(block)
    return out


def reverse_postorder(function: Function) -> list[BasicBlock]:
    """Reverse postorder (topological-ish order for reducible CFGs)."""
    return list(reversed(postorder(function)))


def exit_blocks(function: Function) -> list[BasicBlock]:
    """Reachable blocks whose terminator is a return."""
    from repro.ir.instructions import Ret

    return [b for b in reachable_blocks(function) if isinstance(b.terminator, Ret)]
