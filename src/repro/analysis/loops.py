"""Natural-loop detection over the IR CFG.

Lowering already knows the loop structure (it created the regions), so this
pass exists to *validate* that structure — tests assert that the natural
loops found here line up one-to-one with the LOOP regions lowering emitted —
and to support IR-level induction/reduction detection, which needs loop
membership for code that arrives without region annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import predecessor_map, reachable_blocks
from repro.analysis.dominators import dominator_tree
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


@dataclass(eq=False)
class Loop:
    """A natural loop: header plus the body blocks of all its back edges."""

    header: BasicBlock
    blocks: set[BasicBlock] = field(default_factory=set)
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth = 1
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:
        return f"<loop header={self.header.label} blocks={len(self.blocks)}>"


@dataclass
class LoopForest:
    """All natural loops of a function, with nesting links."""

    loops: list[Loop] = field(default_factory=list)
    #: innermost loop containing each block (absent = not in any loop)
    block_loop: dict[BasicBlock, Loop] = field(default_factory=dict)

    @property
    def top_level(self) -> list[Loop]:
        return [loop for loop in self.loops if loop.parent is None]

    def loop_of(self, block: BasicBlock) -> Loop | None:
        return self.block_loop.get(block)


def find_natural_loops(function: Function) -> LoopForest:
    """Detect natural loops via back edges (``latch -> header`` where the
    header dominates the latch) and build the nesting forest."""
    dom = dominator_tree(function)
    preds = predecessor_map(function)

    # Collect back edges, merging loops that share a header.
    header_latches: dict[BasicBlock, list[BasicBlock]] = {}
    for block in reachable_blocks(function):
        for successor in block.successors:
            if dom.dominates(successor, block):
                header_latches.setdefault(successor, []).append(block)

    loops: list[Loop] = []
    for header, latches in header_latches.items():
        loop = Loop(header=header)
        loop.blocks.add(header)
        worklist = list(latches)
        while worklist:
            block = worklist.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            worklist.extend(preds.get(block, []))
        loops.append(loop)

    # Nest loops: sort by size so the smallest containing loop wins.
    loops.sort(key=lambda l: len(l.blocks))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1 :]:
            if inner.header in outer.blocks and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break

    forest = LoopForest(loops=loops)
    for loop in loops:  # smallest (innermost) first: first claim wins
        for block in loop.blocks:
            forest.block_loop.setdefault(block, loop)
    return forest
