"""The static DOALL-safety verdict lattice.

The dependence classifier (:mod:`repro.analysis.dependence`) condenses
everything it learns about one loop into a single :class:`RegionVerdict`:

* ``SAFE_DOALL`` — no loop-carried dependence of any kind: every scalar
  written in the loop is private, an induction variable, or a reduction
  (and there are none of the latter), every memory access pair passes the
  conservative subscript test, and the loop has no side-effecting calls
  or early exits.
* ``SAFE_WITH_REDUCTION(vars)`` — parallelizable after privatizing the
  named reduction accumulators (OpenMP ``reduction(...)`` clauses).
* ``DOACROSS_ONLY`` — a *characterized* cross-iteration dependence exists
  (a scalar recurrence, a constant-distance array dependence, or a
  data-dependent early exit); the loop can still be pipelined.
* ``UNSAFE`` — an *uncharacterized* dependence may exist: a non-affine or
  indirect subscript, a may-alias between distinct objects, or an impure
  call. Every ``UNSAFE``/``DOACROSS_ONLY`` verdict carries at least one
  :class:`DependenceWitness` chain with source locations.
* ``UNKNOWN`` — not analyzed (non-loop regions, or profiles loaded from a
  build that predates the analyzer).

Verdicts travel as compact string *tags* (``doall``, ``reduction(x,y)``,
``doacross``, ``unsafe``, ``?``) so they fit in a profile file and a plan
table column without dragging the witness objects along.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.frontend.source import SourceSpan


class Verdict(enum.Enum):
    SAFE_DOALL = "SAFE_DOALL"
    SAFE_WITH_REDUCTION = "SAFE_WITH_REDUCTION"
    DOACROSS_ONLY = "DOACROSS_ONLY"
    UNSAFE = "UNSAFE"
    UNKNOWN = "UNKNOWN"

    def __str__(self) -> str:
        return self.value


#: lattice rank: higher = safer. UNKNOWN ranks lowest so "no information"
#: never strengthens a claim.
_RANKS = {
    Verdict.SAFE_DOALL: 4,
    Verdict.SAFE_WITH_REDUCTION: 3,
    Verdict.DOACROSS_ONLY: 2,
    Verdict.UNSAFE: 1,
    Verdict.UNKNOWN: 0,
}

#: tag for an unanalyzed region (also the default for profiles written by
#: builds without the analyzer)
UNKNOWN_TAG = "?"


@dataclass
class DependenceWitness:
    """A concrete dependence chain: why a loop is not (fully) safe.

    ``chain`` is an ordered list of ``(role, span)`` pairs — e.g. the
    writing access followed by the reading access — rendered with
    ``file:line:col`` locations like the front end's diagnostics.
    """

    kind: str  # e.g. 'scalar-recurrence', 'array-dep', 'may-alias', ...
    description: str
    chain: list[tuple[str, SourceSpan]] = field(default_factory=list)
    #: constant iteration distance when known (None = unknown distance)
    distance: int | None = None

    def render(self) -> str:
        lines = [f"{self.kind}: {self.description}"]
        for role, span in self.chain:
            lines.append(f"  {span.filename}:{span.start}: {role}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class RegionVerdict:
    """The verdict for one static (loop) region, with its evidence."""

    verdict: Verdict
    #: source names of reduction accumulators (for SAFE_WITH_REDUCTION)
    reduction_vars: tuple[str, ...] = ()
    witnesses: list[DependenceWitness] = field(default_factory=list)

    @property
    def rank(self) -> int:
        return _RANKS[self.verdict]

    @property
    def is_safe(self) -> bool:
        """Safe to run as DOALL (possibly with reduction clauses)."""
        return self.verdict in (
            Verdict.SAFE_DOALL,
            Verdict.SAFE_WITH_REDUCTION,
        )

    @property
    def tag(self) -> str:
        """Compact serializable form (shown in plan tables)."""
        if self.verdict is Verdict.SAFE_DOALL:
            return "doall"
        if self.verdict is Verdict.SAFE_WITH_REDUCTION:
            return f"reduction({','.join(self.reduction_vars)})"
        if self.verdict is Verdict.DOACROSS_ONLY:
            return "doacross"
        if self.verdict is Verdict.UNSAFE:
            return "unsafe"
        return UNKNOWN_TAG

    def describe(self) -> str:
        text = str(self.verdict)
        if self.verdict is Verdict.SAFE_WITH_REDUCTION:
            text += f"({', '.join(self.reduction_vars)})"
        return text

    def __str__(self) -> str:
        return self.describe()


def tag_verdict(tag: str) -> Verdict:
    """Decode a compact tag back into its lattice point."""
    if tag == "doall":
        return Verdict.SAFE_DOALL
    if tag.startswith("reduction(") and tag.endswith(")"):
        return Verdict.SAFE_WITH_REDUCTION
    if tag == "doacross":
        return Verdict.DOACROSS_ONLY
    if tag == "unsafe":
        return Verdict.UNSAFE
    return Verdict.UNKNOWN


def tag_reduction_vars(tag: str) -> tuple[str, ...]:
    """Reduction accumulator names encoded in a ``reduction(...)`` tag."""
    if not (tag.startswith("reduction(") and tag.endswith(")")):
        return ()
    inner = tag[len("reduction(") : -1]
    return tuple(name for name in inner.split(",") if name)


def tag_rank(tag: str) -> int:
    """Lattice rank of a compact tag (higher = safer)."""
    return _RANKS[tag_verdict(tag)]


def tag_is_safe(tag: str) -> bool:
    return tag_verdict(tag) in (
        Verdict.SAFE_DOALL,
        Verdict.SAFE_WITH_REDUCTION,
    )


def tag_refutes_doall(tag: str) -> bool:
    """True when the static verdict contradicts a dynamic DOALL claim."""
    return tag_verdict(tag) in (Verdict.DOACROSS_ONLY, Verdict.UNSAFE)
