"""IR-level induction/reduction detection.

The production pipeline flags dependence-breaking updates during lowering,
where variable identity is exact (:mod:`repro.lowering.dep_break`). This
pass re-derives the same facts from lowered IR — the way the paper's
LLVM-based implementation works — and is cross-checked against the lowering
marks in the test suite. It can also be applied to IR that did not come from
our front end.

Recognized pattern (per natural loop)::

    t = binop(+/-/*, r, x)   ; one operand is the variable register r
    r = copy t               ; the only write to r inside the loop

* if the op is +/- and ``x`` is loop-invariant → **induction**;
* else if ``r`` has no other uses inside the loop → **reduction**.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.loops import Loop, find_natural_loops
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Copy, REDUCTION_OPS
from repro.ir.values import Constant, Register, Value


@dataclass
class IrDepBreaks:
    """Detected dependence-breaking updates for one function."""

    #: BinOp instruction -> ('induction' | 'reduction', old-operand index)
    marks: dict[BinOp, tuple[str, int]] = field(default_factory=dict)
    induction_registers: set[Register] = field(default_factory=set)
    reduction_registers: set[Register] = field(default_factory=set)


def _defs_in(loop: Loop) -> dict[Register, list]:
    defs: dict[Register, list] = {}
    for block in loop.blocks:
        for instr in block.instructions:
            if instr.result is not None:
                defs.setdefault(instr.result, []).append(instr)
    return defs


def _uses_in(loop: Loop) -> dict[Register, int]:
    uses: dict[Register, int] = {}
    for block in loop.blocks:
        for instr in block.instructions:
            for operand in instr.operands:
                if isinstance(operand, Register):
                    uses[operand] = uses.get(operand, 0) + 1
        if block.terminator is not None:
            for operand in block.terminator.operands:
                if isinstance(operand, Register):
                    uses[operand] = uses.get(operand, 0) + 1
    return uses


def _is_loop_invariant(value: Value, defs: dict[Register, list]) -> bool:
    if isinstance(value, Constant):
        return True
    if isinstance(value, Register):
        return value not in defs
    return False


def detect_ir_dep_breaks(function: Function) -> IrDepBreaks:
    """Detect induction/reduction updates per innermost enclosing loop."""
    result = IrDepBreaks()
    forest = find_natural_loops(function)

    for loop in forest.loops:
        defs = _defs_in(loop)
        uses = _uses_in(loop)
        for block in loop.blocks:
            # Only classify updates whose innermost loop is this one.
            if forest.loop_of(block) is not loop:
                continue
            for instr in block.instructions:
                if not isinstance(instr, Copy):
                    continue
                target = instr.result
                source = instr.operand
                if target is None or not isinstance(source, Register):
                    continue
                if len(defs.get(target, [])) != 1:
                    continue  # must be the only write to the variable
                source_defs = defs.get(source, [])
                if len(source_defs) != 1 or not isinstance(source_defs[0], BinOp):
                    continue
                binop = source_defs[0]
                if binop.lhs is target:
                    old_index, other = 0, binop.rhs
                elif binop.rhs is target:
                    old_index, other = 1, binop.lhs
                else:
                    continue

                is_step = binop.op in ("+", "-") and _is_loop_invariant(other, defs)
                if is_step:
                    result.marks[binop] = ("induction", old_index)
                    result.induction_registers.add(target)
                    continue

                if binop.op not in REDUCTION_OPS and binop.op != "-":
                    continue
                if binop.op == "-" and old_index != 0:
                    continue  # r = x - r is not a sum reduction
                # Reduction: target must have no uses in the loop besides
                # this binop's old-value operand.
                if uses.get(target, 0) == 1:
                    result.marks[binop] = ("reduction", old_index)
                    result.reduction_registers.add(target)
    return result
