"""The static-analysis driver: one call analyzes a whole module.

:func:`analyze_module` runs reaching definitions, the loop dependence
classifier, and (optionally) lint over every function, then maps each
natural loop's verdict onto the static region tree: the loop header's
``region_id`` names the innermost region containing the header — the LOOP
region itself for ``while``/``for`` loops, or the BODY region for
``do``-style rotated loops, in which case the driver walks ``parent_id``
up to the enclosing LOOP. The resulting verdict *tags* are stamped onto
:class:`~repro.instrument.regions.StaticRegion.verdict` so they travel
with the profile (serialization, merging, planning, reports).

Observability: the whole pass runs under a ``static-analysis`` span with
``dataflow`` / ``dependence`` / ``lint`` children, and feeds
``analysis.*`` counters when metrics collection is on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.callgraph import build_call_graph
from repro.analysis.dataflow import ReachingDefinitions
from repro.analysis.dependence import (
    LoopDependenceInfo,
    analyze_function_dependences,
)
from repro.analysis.lint import Diagnostic, LintContext, run_lint
from repro.analysis.static_cost import RegionCost, compute_static_costs
from repro.analysis.summaries import (
    FunctionSummary,
    compute_module_summaries,
)
from repro.analysis.verdict import RegionVerdict, Verdict
from repro.instrument.regions import StaticRegionTree
from repro.ir.module import Module
from repro.obs.metrics import get_metrics, metrics_enabled
from repro.obs.trace import get_tracer


@dataclass
class FunctionAnalysis:
    """Per-function analysis artifacts."""

    name: str
    reaching: ReachingDefinitions
    loops: list[LoopDependenceInfo] = field(default_factory=list)


@dataclass
class ModuleAnalysis:
    """Everything the static analyzer learned about one module."""

    functions: dict[str, FunctionAnalysis] = field(default_factory=dict)
    #: LOOP region id -> verdict (only loops the analyzer resolved)
    verdicts: dict[int, RegionVerdict] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: interprocedural mod/ref summaries (function name -> summary)
    summaries: dict[str, FunctionSummary] = field(default_factory=dict)
    #: static cost bounds (LOOP region id -> RegionCost)
    costs: dict[int, RegionCost] = field(default_factory=dict)
    #: analyzer wall time in seconds (bench_suite records this)
    elapsed: float = 0.0

    def verdict_for(self, region_id: int) -> RegionVerdict | None:
        return self.verdicts.get(region_id)

    def loop_infos(self) -> list[LoopDependenceInfo]:
        out: list[LoopDependenceInfo] = []
        for analysis in self.functions.values():
            out.extend(analysis.loops)
        return out


def resolve_loop_region(
    regions: StaticRegionTree | None, info: LoopDependenceInfo
) -> int | None:
    """Resolve a natural loop to its LOOP region id, walking BODY regions
    up to their loop (rotated do-while headers live in the body region)."""
    if regions is None or info.region_id < 0:
        return None
    if info.region_id >= len(regions):
        return None
    region = regions.region(info.region_id)
    while region is not None and not region.is_loop:
        if region.parent_id is None:
            return None
        region = regions.region(region.parent_id)
    return region.id if region is not None else None


def analyze_module(module: Module, lint: bool = True) -> ModuleAnalysis:
    """Run the full static-analysis stack over ``module``.

    Stamps verdict tags onto the module's region tree as a side effect and
    returns the detailed :class:`ModuleAnalysis`.
    """
    tracer = get_tracer()
    start = time.perf_counter()
    analysis = ModuleAnalysis()
    with tracer.span("static-analysis", functions=len(module.functions)):
        with tracer.span("dataflow"):
            reaching = {
                name: ReachingDefinitions(function)
                for name, function in module.functions.items()
            }
        with tracer.span("summaries") as span:
            graph = build_call_graph(module)
            analysis.summaries = compute_module_summaries(module, graph)
            span.args["functions"] = len(analysis.summaries)
        with tracer.span("dependence") as span:
            loop_count = 0
            for name, function in module.functions.items():
                infos = analyze_function_dependences(
                    function,
                    module,
                    rd=reaching[name],
                    summaries=analysis.summaries,
                )
                loop_count += len(infos)
                analysis.functions[name] = FunctionAnalysis(
                    name=name, reaching=reaching[name], loops=infos
                )
            span.args["loops"] = loop_count
        _stamp_verdicts(module.regions, analysis)
        with tracer.span("static-cost") as span:
            analysis.costs = compute_static_costs(
                module,
                {
                    name: fa.loops
                    for name, fa in analysis.functions.items()
                },
                regions=module.regions,
                graph=graph,
            )
            span.args["regions"] = len(analysis.costs)
            if module.regions is not None:
                for region_id, cost in analysis.costs.items():
                    module.regions.region(region_id).static_cost = cost
        if lint:
            with tracer.span("lint") as span:
                context = LintContext(
                    module=module,
                    reaching=reaching,
                    dependences={
                        name: fa.loops
                        for name, fa in analysis.functions.items()
                    },
                    summaries=analysis.summaries,
                )
                analysis.diagnostics = run_lint(context)
                span.args["diagnostics"] = len(analysis.diagnostics)
    analysis.elapsed = time.perf_counter() - start

    if metrics_enabled():
        metrics = get_metrics()
        metrics.counter("analysis.functions").inc(len(analysis.functions))
        metrics.counter("analysis.loops").inc(
            sum(len(fa.loops) for fa in analysis.functions.values())
        )
        for verdict in analysis.verdicts.values():
            name = verdict.verdict.value.lower()
            metrics.counter(f"analysis.verdicts.{name}").inc()
        metrics.counter("analysis.diagnostics").inc(
            len(analysis.diagnostics)
        )
        metrics.histogram("analysis.seconds").record(analysis.elapsed)
    return analysis


def _stamp_verdicts(
    regions: StaticRegionTree | None, analysis: ModuleAnalysis
) -> None:
    for info in analysis.loop_infos():
        region_id = resolve_loop_region(regions, info)
        if region_id is None:
            continue
        verdict = info.verdict
        existing = analysis.verdicts.get(region_id)
        if existing is not None and existing.rank <= verdict.rank:
            continue  # keep the least-safe verdict for shared regions
        analysis.verdicts[region_id] = verdict
        if regions is not None:
            regions.region(region_id).verdict = verdict.tag


def analyze_program(program) -> ModuleAnalysis:
    """Convenience wrapper for a :class:`CompiledProgram`."""
    return analyze_module(program.module)


def unknown_verdict() -> RegionVerdict:
    return RegionVerdict(Verdict.UNKNOWN)
