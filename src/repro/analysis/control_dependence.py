"""Static control-dependence analysis (Ferrante–Ottenstein–Warren).

Two artifacts are produced per function:

* the classic control-dependence relation ``block -> set of branch blocks it
  is control dependent on`` (used by tests and by the IR-level dependence
  validation); and
* the **runtime control-stack schedule** the KremLib runtime consumes
  (paper §4.1, *Managing Control Dependencies*): for every conditional
  branch, the block at which its influence ends — its immediate
  postdominator. At run time, executing the branch pushes the condition's
  availability time onto the control-dependence stack; reaching the recorded
  join block pops it. Because availability times only increase, reads need
  only consult the top of the stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dominators import postdominator_tree
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch


@dataclass
class ControlDependenceInfo:
    """Control-dependence facts for one function."""

    #: branch block -> join block where its control influence ends
    #: (None = the virtual exit; influence lasts until function return).
    branch_join: dict[BasicBlock, BasicBlock | None] = field(default_factory=dict)
    #: classic CDG: block -> branch blocks it is control dependent on.
    dependences: dict[BasicBlock, set[BasicBlock]] = field(default_factory=dict)

    def controlling_branches(self, block: BasicBlock) -> set[BasicBlock]:
        return self.dependences.get(block, set())


def compute_control_dependence(function: Function) -> ControlDependenceInfo:
    info = ControlDependenceInfo()
    pdom = postdominator_tree(function)

    branch_blocks = [
        block
        for block in function.blocks
        if isinstance(block.terminator, Branch)
    ]

    for block in branch_blocks:
        join = pdom.idom.get(block)
        # A block absent from the postdom tree can only happen for code that
        # never reaches a return (infinite loops): its influence never ends.
        info.branch_join[block] = join if join is not block else None

    # Classic FOW control dependence: w is control dependent on branch u iff
    # u has a successor v with w postdominating v, and w does not strictly
    # postdominate u. Walk from each successor up the postdom tree until
    # (but excluding) ipostdom(u).
    for u in branch_blocks:
        stop = pdom.idom.get(u)
        for v in u.successors:
            w: object = v
            while w is not stop and w is not None:
                info.dependences.setdefault(w, set()).add(u)  # type: ignore[arg-type]
                if w not in pdom.idom:
                    break
                parent = pdom.idom[w]
                if parent is w:
                    break
                w = parent
    return info
