"""Call graph construction over the IR module.

Strongly connected components are computed once (iterative Tarjan) and
cached on the graph; recursion queries and the interprocedural summary
pass (`repro.analysis.summaries`) both read the same SCC partition
instead of re-walking the edge set per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Call
from repro.ir.module import Module


@dataclass
class CallGraph:
    """Direct (non-builtin) call edges between functions."""

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    _sccs: tuple[tuple[str, ...], ...] | None = field(
        default=None, repr=False, compare=False
    )

    def calls(self, caller: str, callee: str) -> bool:
        return callee in self.callees.get(caller, set())

    def sccs(self) -> tuple[tuple[str, ...], ...]:
        """Strongly connected components, callees before callers.

        Tarjan emits components in reverse topological order of the
        condensation, which is exactly the bottom-up order a summary
        computation wants: by the time a component is visited, every
        function it calls outside the component already has one.
        """
        if self._sccs is None:
            self._sccs = self._tarjan()
        return self._sccs

    def in_cycle(self, name: str) -> bool:
        """True if ``name`` sits on any call cycle (including self-calls)."""
        if name in self.callees.get(name, set()):
            return True
        for component in self.sccs():
            if name in component:
                return len(component) > 1
        return False

    def is_recursive(self, name: str) -> bool:
        """True if ``name`` participates in any call cycle."""
        return self.in_cycle(name)

    def reachable_from(self, root: str = "main") -> set[str]:
        out: set[str] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self.callees.get(current, set()))
        return out

    def _tarjan(self) -> tuple[tuple[str, ...], ...]:
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[tuple[str, ...]] = []
        counter = 0

        for root in self.callees:
            if root in index:
                continue
            # iterative DFS: (node, iterator over its callees)
            work = [(root, iter(sorted(self.callees.get(root, set()))))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edges = work[-1]
                advanced = False
                for succ in edges:
                    if succ not in self.callees:
                        continue
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(self.callees.get(succ, set()))))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(tuple(sorted(component)))
        return tuple(components)


def build_call_graph(module: Module) -> CallGraph:
    graph = CallGraph()
    for name, function in module.functions.items():
        graph.callees.setdefault(name, set())
        graph.callers.setdefault(name, set())
    for name, function in module.functions.items():
        for instr in function.instructions():
            if isinstance(instr, Call) and not instr.is_builtin:
                graph.callees[name].add(instr.callee)
                graph.callers.setdefault(instr.callee, set()).add(name)
    return graph
