"""Call graph construction over the IR module."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Call
from repro.ir.module import Module


@dataclass
class CallGraph:
    """Direct (non-builtin) call edges between functions."""

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)

    def calls(self, caller: str, callee: str) -> bool:
        return callee in self.callees.get(caller, set())

    def is_recursive(self, name: str) -> bool:
        """True if ``name`` participates in any call cycle."""
        seen: set[str] = set()
        stack = list(self.callees.get(name, set()))
        while stack:
            current = stack.pop()
            if current == name:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees.get(current, set()))
        return False

    def reachable_from(self, root: str = "main") -> set[str]:
        out: set[str] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self.callees.get(current, set()))
        return out


def build_call_graph(module: Module) -> CallGraph:
    graph = CallGraph()
    for name, function in module.functions.items():
        graph.callees.setdefault(name, set())
        graph.callers.setdefault(name, set())
    for name, function in module.functions.items():
        for instr in function.instructions():
            if isinstance(instr, Call) and not instr.is_builtin:
                graph.callees[name].add(instr.callee)
                graph.callers.setdefault(instr.callee, set()).add(name)
    return graph
