"""Loop-carried dependence classification and the DOALL safety verdict.

For every natural loop this pass tags each *written scalar register* as
private, induction, reduction, or cross-iteration dependent, and runs a
conservative subscript test over every pair of memory accesses that may
touch the same object. The results condense into the
:class:`~repro.analysis.verdict.RegionVerdict` lattice.

Scalar side (def-use based)
    A register written in the loop is **private** when no path from the
    header reads it before writing it (nothing flows around the back
    edge). Otherwise it must match an induction (``i = i ± invariant``) or
    reduction (``s = s ⊕ expr``, no other in-loop use) update pattern, or
    it is a genuine **cross-iteration** scalar recurrence.

Memory side (affine subscript test)
    Array indices are reconstructed as affine expressions over the loop's
    induction variables, inner-loop induction variables (with value
    ranges), and loop invariants — resolved through *reaching
    definitions*, so a temporary reassigned elsewhere does not spoil the
    reconstruction. Two accesses to the same object carry a
    cross-iteration dependence only if ``stride·Δ = -D`` has an integer
    solution with iteration distance ``Δ ≠ 0``, where ``stride`` is the
    common per-iteration address advance and ``D`` the interval of the
    non-iteration terms. Distinct objects fall back to a may-alias model:
    array parameters may alias array parameters and global arrays of the
    same element type; ``alloca`` results alias nothing but themselves.
    Anything non-affine (e.g. an indirect ``count[keys[i]]`` histogram
    subscript) is an *uncharacterized* dependence -> ``UNSAFE``.

Side conditions
    Calls are resolved through interprocedural mod/ref summaries
    (:mod:`repro.analysis.summaries`): a summarizable callee's global
    and array-parameter effects are rebound through the call-site
    argument map and join the loop's access set as synthetic accesses
    (witness chains then walk through the call site into the callee).
    Unsummarizable calls (RNG/IO builtins, recursive cycles with
    effects, unresolvable objects) remain uncharacterized dependences;
    multiple loop exits (``break``) make the trip count data-dependent
    and cap the verdict at ``DOACROSS_ONLY``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.dataflow import (
    Definition,
    ReachingDefinitions,
    definitions_in_loop,
    upward_exposed_registers,
)
from repro.analysis.loops import Loop, LoopForest, find_natural_loops
from repro.analysis.verdict import DependenceWitness, RegionVerdict, Verdict
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Copy,
    Load,
    REDUCTION_OPS,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import ArrayType
from repro.ir.values import Constant, GlobalRef, Register, Value

#: builtins with no observable state (pure math); everything else
#: (``rand``/``srand``/``randf`` mutate RNG state, ``print`` does I/O)
#: carries a dependence between iterations.
PURE_BUILTINS = frozenset(
    {
        "sqrt", "fabs", "exp", "log", "sin", "cos", "floor", "ceil",
        "pow", "abs", "min", "max", "int", "float",
    }
)


class DepClass(enum.Enum):
    """Classification of one scalar register written inside a loop."""

    PRIVATE = "private"
    INDUCTION = "induction"
    REDUCTION = "reduction"
    CROSS_ITERATION = "cross-iteration"

    def __str__(self) -> str:
        return self.value


@dataclass
class ScalarInfo:
    """One written scalar's classification (plus evidence when carried)."""

    register: Register
    dep_class: DepClass
    witness: DependenceWitness | None = None

    @property
    def name(self) -> str:
        return self.register.name or repr(self.register)


@dataclass
class InductionVar:
    """An induction variable of one loop: ``reg = reg ± step`` per trip."""

    register: Register
    update: BinOp
    #: signed integer step, or None when the step is a symbolic invariant
    step: int | None
    #: constant initial value when every external reaching def is constant
    init: int | None = None
    #: inclusive value interval (None end = unbounded)
    lo: int | None = None
    hi: int | None = None


@dataclass
class MemAccess:
    """One memory access in the loop, with its resolved object and index.

    Besides direct Loads/Stores, a loop's access set contains *synthetic*
    accesses derived from callee mod/ref summaries: ``instr`` is then the
    Call, ``store`` carries the explicit direction, and ``trace`` holds
    the witness-chain hops walking through the call site into the callee.
    """

    instr: Load | Store | Call
    block: BasicBlock
    obj: "MemObject"
    #: affine image of the index (None = non-affine); scalar cells use
    #: the zero expression
    affine: "AffineExpr | None" = None
    #: explicit direction for call-derived accesses (None = from instr)
    store: bool | None = None
    #: interprocedural witness-chain hops (empty for direct accesses)
    trace: tuple = ()
    #: normalized reduction operator when the callee access is half of a
    #: recognized ``g = g ⊕ v`` update (from the summary)
    summary_op: str | None = None

    @property
    def is_store(self) -> bool:
        if self.store is not None:
            return self.store
        return isinstance(self.instr, Store)

    @property
    def role(self) -> str:
        return "store" if self.is_store else "load"

    @property
    def chain(self) -> list:
        """Witness-chain hops describing this access."""
        if self.trace:
            return list(self.trace)
        return [(f"{self.role} of {self.obj} here", self.instr.span)]


@dataclass(frozen=True)
class MemObject:
    """An abstract memory object for the may-alias model."""

    kind: str  # 'global' | 'alloca' | 'param' | 'unknown'
    name: str
    key: object
    element: object = None  # element type (arrays) or cell type (scalars)
    is_array: bool = False

    def __str__(self) -> str:
        return self.name


def may_alias(a: MemObject, b: MemObject) -> bool:
    if a.key == b.key:
        return True
    if a.kind == "unknown" or b.kind == "unknown":
        return True
    # Scalar global cells are distinct named objects; they never alias
    # arrays (MiniC has no address-of).
    if not (a.is_array and b.is_array):
        return False
    # A local alloca is a fresh object: nothing else names it.
    if a.kind == "alloca" or b.kind == "alloca":
        return False
    if a.kind == "global" and b.kind == "global":
        return False  # distinct globals are distinct objects
    # param vs param / param vs global array: the caller may have passed
    # the same array under both names — same element type only.
    return a.element == b.element


@dataclass
class LoopDependenceInfo:
    """Everything the classifier learned about one natural loop."""

    loop: Loop
    function: Function
    #: LOOP region id this natural loop corresponds to (-1 when the loop
    #: arrived without region annotations)
    region_id: int = -1
    scalars: dict[Register, ScalarInfo] = field(default_factory=dict)
    inductions: dict[Register, InductionVar] = field(default_factory=dict)
    #: reduction accumulators: source name -> update instruction
    reductions: dict[str, object] = field(default_factory=dict)
    accesses: list[MemAccess] = field(default_factory=list)
    witnesses: list[DependenceWitness] = field(default_factory=list)
    exit_count: int = 0
    impure_calls: list[Call] = field(default_factory=list)
    verdict: RegionVerdict = field(
        default_factory=lambda: RegionVerdict(Verdict.UNKNOWN)
    )

    def scalar_class(self, name: str) -> DepClass | None:
        """Classification of a source variable by name (tests/debugging)."""
        for info in self.scalars.values():
            if info.name == name:
                return info.dep_class
        return None


# ----------------------------------------------------------------------
# Affine index expressions
# ----------------------------------------------------------------------


@dataclass
class AffineExpr:
    """``const + Σ coeff·symbol``.

    A symbol is a :class:`Register` (an induction variable of this or an
    inner loop, or a register the loop never writes) or a
    :class:`Definition` (a single loop-external write that reaches the
    use — fixed for the whole loop execution, so it cancels between
    iterations like any invariant)."""

    terms: dict[object, int] = field(default_factory=dict)
    const: int = 0

    def add_term(self, symbol: object, coeff: int) -> None:
        if coeff == 0:
            return
        new = self.terms.get(symbol, 0) + coeff
        if new == 0:
            self.terms.pop(symbol, None)
        else:
            self.terms[symbol] = new

    @property
    def is_constant(self) -> bool:
        return not self.terms


def _combine(a: AffineExpr, b: AffineExpr, sign: int) -> AffineExpr:
    out = AffineExpr(dict(a.terms), a.const + sign * b.const)
    for symbol, coeff in b.terms.items():
        out.add_term(symbol, sign * coeff)
    return out


def _scale(a: AffineExpr, factor: int) -> AffineExpr:
    return AffineExpr(
        {s: c * factor for s, c in a.terms.items()}, a.const * factor
    )


@dataclass(frozen=True)
class BoundedSym:
    """An opaque value known only by its interval, re-sampled on every
    iteration of the analyzed loop.

    This is how a callee's *internal* loop variable appears after its
    index summary is rebound at a call site: ``fill(i)`` writing
    ``a[4·base + j]`` for ``j ∈ [0,3]`` becomes ``a[4·i + s]`` with
    ``s = BoundedSym(0, 3)``. Distinct tags never cancel — each call
    re-runs the callee loop, so two iterations sample independently."""

    lo: int
    hi: int
    tag: object = None


class _LoopContext:
    """Shared lookup tables for one loop's dependence analysis."""

    def __init__(
        self,
        function: Function,
        loop: Loop,
        rd: ReachingDefinitions,
        forest: LoopForest,
        induction_of: dict[Loop, dict[Register, InductionVar]],
        summaries: dict | None = None,
    ):
        self.function = function
        self.loop = loop
        self.rd = rd
        self.forest = forest
        #: interprocedural mod/ref summaries (name -> FunctionSummary)
        self.summaries = summaries
        self.defs_in_loop = definitions_in_loop(rd, loop)
        #: loop blocks in function layout order (deterministic output)
        self.blocks = [b for b in function.blocks if b in loop.blocks]
        #: induction variables of this loop
        self.inductions = induction_of.get(loop, {})
        #: induction variables of loops strictly inside this one
        self.inner_inductions: dict[Register, InductionVar] = {}
        stack = list(loop.children)
        while stack:
            inner = stack.pop()
            self.inner_inductions.update(induction_of.get(inner, {}))
            stack.extend(inner.children)

    def is_invariant(self, register: Register) -> bool:
        return register not in self.defs_in_loop

    # -- affine reconstruction -----------------------------------------

    def affine_of(
        self, value: Value, owner, _visiting: frozenset = frozenset()
    ) -> AffineExpr | None:
        """Affine image of ``value`` as used by instruction ``owner``,
        resolved through reaching definitions; None when non-affine."""
        if isinstance(value, Constant):
            if isinstance(value.value, int):
                return AffineExpr(const=value.value)
            return None
        if not isinstance(value, Register):
            return None
        register = value
        if (
            register in self.inductions
            or register in self.inner_inductions
            or self.is_invariant(register)
        ):
            expr = AffineExpr()
            expr.add_term(register, 1)
            return expr
        # Written in the loop and not an induction variable: follow the
        # unique reaching definition, if there is one.
        defs = self.rd.reaching(owner, register)
        if len(defs) != 1:
            return None
        definition = next(iter(defs))
        if definition in _visiting:
            return None  # value cycles around the back edge
        if definition.is_parameter:
            expr = AffineExpr()
            expr.add_term(register, 1)
            return expr
        if definition.block not in self.loop.blocks:
            # A single loop-external write: fixed during the loop.
            expr = AffineExpr()
            expr.add_term(definition, 1)
            return expr
        instr = definition.instr
        visiting = _visiting | {definition}
        if isinstance(instr, Copy):
            return self.affine_of(instr.operand, instr, visiting)
        if isinstance(instr, BinOp) and instr.op in ("+", "-", "*"):
            lhs = self.affine_of(instr.lhs, instr, visiting)
            rhs = self.affine_of(instr.rhs, instr, visiting)
            if lhs is None or rhs is None:
                return None
            if instr.op in ("+", "-"):
                return _combine(lhs, rhs, 1 if instr.op == "+" else -1)
            if rhs.is_constant:
                return _scale(lhs, rhs.const)
            if lhs.is_constant:
                return _scale(rhs, lhs.const)
        return None

    def symbol_range(self, symbol) -> tuple[int | None, int | None]:
        """Known inclusive value range of a symbol inside this loop."""
        if isinstance(symbol, Register):
            info = self.inner_inductions.get(symbol) or self.inductions.get(
                symbol
            )
            if info is not None:
                return info.lo, info.hi
        return None, None


# ----------------------------------------------------------------------
# Induction-variable discovery
# ----------------------------------------------------------------------


def _single_in_loop_def(
    defs_in_loop: dict[Register, list[Definition]], register: Register
):
    defs = defs_in_loop.get(register, [])
    if len(defs) == 1:
        return defs[0].instr
    return None


def _detect_inductions(
    loop: Loop, rd: ReachingDefinitions
) -> dict[Register, InductionVar]:
    """Find ``r = r ± step`` updates where the loop writes ``r`` exactly
    once and ``step`` is loop-invariant, then bound each variable's value
    interval from its (constant) initial value and the loop bound."""
    defs_in_loop = definitions_in_loop(rd, loop)
    out: dict[Register, InductionVar] = {}
    for register, defs in defs_in_loop.items():
        if len(defs) != 1 or not isinstance(defs[0].instr, Copy):
            continue
        copy = defs[0].instr
        source = copy.operand
        if not isinstance(source, Register):
            continue
        update = _single_in_loop_def(defs_in_loop, source)
        if not isinstance(update, BinOp) or update.op not in ("+", "-"):
            continue
        if update.lhs is register:
            other = update.rhs
        elif update.rhs is register and update.op == "+":
            other = update.lhs
        else:
            continue
        step: int | None = None
        if isinstance(other, Constant) and isinstance(other.value, int):
            step = other.value if update.op == "+" else -other.value
        elif not (
            isinstance(other, Register) and other not in defs_in_loop
        ):
            continue  # step must be loop-invariant
        info = InductionVar(register=register, update=update, step=step)
        _bound_induction(info, loop, rd)
        out[register] = info
    return out


def _bound_induction(
    info: InductionVar, loop: Loop, rd: ReachingDefinitions
) -> None:
    """Fill in init and the value interval when they are statically known."""
    if info.step is None or info.step == 0:
        return
    inits: list[int] = []
    for definition in rd.external_reaching(loop, info.register):
        instr = definition.instr
        if (
            isinstance(instr, Copy)
            and isinstance(instr.operand, Constant)
            and isinstance(instr.operand.value, int)
        ):
            inits.append(instr.operand.value)
        else:
            return  # some unknown initial value
    if not inits:
        return
    info.init = inits[0] if len(set(inits)) == 1 else None

    bound = _loop_bound(info, loop, rd)
    if info.step > 0:
        info.lo = min(inits)
        if bound is not None:
            op, limit = bound
            if op in ("<", "<="):
                info.hi = limit - (1 if op == "<" else 0)
    else:
        info.hi = max(inits)
        if bound is not None:
            op, limit = bound
            if op in (">", ">="):
                info.lo = limit + (1 if op == ">" else 0)


def _loop_bound(
    info: InductionVar, loop: Loop, rd: ReachingDefinitions
) -> tuple[str, int] | None:
    """``(cmp-op, constant)`` from a ``branch (r CMP const)`` loop test."""
    from repro.ir.instructions import Branch

    for block in loop.blocks:
        terminator = block.terminator
        if not isinstance(terminator, Branch):
            continue
        exits_loop = any(
            successor not in loop.blocks
            for successor in terminator.successors
        )
        if not exits_loop or not isinstance(terminator.cond, Register):
            continue
        cond_defs = rd.reaching(terminator, terminator.cond)
        if len(cond_defs) != 1:
            continue
        cmp = next(iter(cond_defs)).instr
        if not isinstance(cmp, BinOp) or cmp.op not in ("<", "<=", ">", ">="):
            continue
        if cmp.lhs is info.register and isinstance(cmp.rhs, Constant):
            if isinstance(cmp.rhs.value, int):
                return cmp.op, cmp.rhs.value
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        if cmp.rhs is info.register and isinstance(cmp.lhs, Constant):
            if isinstance(cmp.lhs.value, int):
                return flipped[cmp.op], cmp.lhs.value
    return None


# ----------------------------------------------------------------------
# Scalar classification
# ----------------------------------------------------------------------


def _classify_scalars(ctx: _LoopContext, info: LoopDependenceInfo) -> None:
    exposed = upward_exposed_registers(ctx.loop)
    reductions = _detect_scalar_reductions(ctx)

    for register, defs in ctx.defs_in_loop.items():
        if isinstance(register.type, ArrayType):
            continue  # array references are covered by the memory side
        if register not in exposed:
            info.scalars[register] = ScalarInfo(register, DepClass.PRIVATE)
            continue
        if register in ctx.inductions:
            info.scalars[register] = ScalarInfo(register, DepClass.INDUCTION)
            continue
        if register in reductions:
            info.scalars[register] = ScalarInfo(register, DepClass.REDUCTION)
            name = register.name or repr(register)
            info.reductions[name] = reductions[register]
            continue
        witness = _scalar_witness(ctx, register, defs)
        info.scalars[register] = ScalarInfo(
            register, DepClass.CROSS_ITERATION, witness
        )
        info.witnesses.append(witness)


def _detect_scalar_reductions(ctx: _LoopContext) -> dict[Register, BinOp]:
    """``s = s ⊕ expr`` accumulators with no other in-loop use of ``s``."""
    out: dict[Register, BinOp] = {}
    uses: dict[Register, int] = {}
    for block in ctx.blocks:
        for owner in [*block.instructions, block.terminator]:
            if owner is None:
                continue
            for operand in owner.operands:
                if isinstance(operand, Register):
                    uses[operand] = uses.get(operand, 0) + 1
    for register, defs in ctx.defs_in_loop.items():
        if len(defs) != 1 or not isinstance(defs[0].instr, Copy):
            continue
        source = defs[0].instr.operand
        if not isinstance(source, Register):
            continue
        update = _single_in_loop_def(ctx.defs_in_loop, source)
        if not isinstance(update, BinOp):
            continue
        if update.op not in REDUCTION_OPS and update.op != "-":
            continue
        if update.lhs is register:
            pass
        elif update.rhs is register and update.op != "-":
            pass  # commutative: s = expr ⊕ s
        else:
            continue
        # The accumulator's only in-loop use must be its own update.
        if uses.get(register, 0) == 1:
            out[register] = update
    return out


def _scalar_witness(
    ctx: _LoopContext, register: Register, defs
) -> DependenceWitness:
    name = register.name or repr(register)
    write = defs[0].instr
    # Find an in-loop read of the register for the chain's second hop.
    read_span = None
    for block in ctx.blocks:
        for owner in [*block.instructions, block.terminator]:
            if owner is None:
                continue
            if any(op is register for op in owner.operands):
                read_span = owner.span
                break
        if read_span is not None:
            break
    chain = [(f"'{name}' written here (iteration k)", write.span)]
    if read_span is not None:
        chain.append(
            (f"'{name}' read here before any write (iteration k+1)", read_span)
        )
    return DependenceWitness(
        kind="scalar-recurrence",
        description=(
            f"'{name}' carries a value across iterations and is neither "
            "an induction variable nor a reduction"
        ),
        chain=chain,
        distance=1,
    )


# ----------------------------------------------------------------------
# Memory-side analysis
# ----------------------------------------------------------------------


def _resolve_object(mem: Value, rd: ReachingDefinitions) -> MemObject:
    is_array = isinstance(mem.type, ArrayType)
    element = mem.type.element if is_array else mem.type
    if isinstance(mem, GlobalRef):
        return MemObject(
            "global", f"@{mem.name}", ("global", mem.name), element, is_array
        )
    if isinstance(mem, Register):
        name = mem.name or repr(mem)
        defs = rd.defs_of.get(mem, [])
        if len(defs) == 1:
            definition = defs[0]
            if definition.is_parameter:
                return MemObject(
                    "param", name, ("param", id(mem)), element, is_array
                )
            if isinstance(definition.instr, Alloca):
                return MemObject(
                    "alloca", name, ("alloca", id(mem)), element, is_array
                )
        return MemObject(
            "unknown", name, ("unknown", id(mem)), element, is_array
        )
    return MemObject("unknown", str(mem), ("unknown", id(mem)), None, is_array)


def _collect_accesses(ctx: _LoopContext, info: LoopDependenceInfo) -> None:
    for block in ctx.blocks:
        for instr in block.instructions:
            if isinstance(instr, (Load, Store)):
                obj = _resolve_object(instr.mem, ctx.rd)
                if instr.index is None:
                    affine: AffineExpr | None = AffineExpr()  # scalar
                else:
                    affine = ctx.affine_of(instr.index, instr)
                info.accesses.append(MemAccess(instr, block, obj, affine))
            elif (
                isinstance(instr, Call)
                and not instr.is_builtin
                and ctx.summaries is not None
            ):
                _inline_summary_accesses(ctx, info, block, instr)


def _inline_summary_accesses(
    ctx: _LoopContext, info: LoopDependenceInfo, block: BasicBlock, call: Call
) -> None:
    """Project a transparent callee's mod/ref records into this loop's
    access set, rebinding index summaries through the call arguments."""
    summary = ctx.summaries.get(call.callee)
    if summary is None or not summary.transparent:
        return  # _analyze_calls reports the impure-call witness
    for seq, record in enumerate(summary.records):
        if record.target[0] == "global":
            name = record.target[1]
            obj = MemObject(
                "global",
                f"@{name}",
                ("global", name),
                record.element,
                record.is_array,
            )
        else:
            k = record.target[1]
            if not isinstance(k, int) or k >= len(call.args):
                obj = MemObject(
                    "unknown", f"arg{k}", ("unknown", (id(call), seq))
                )
            else:
                obj = _resolve_object(call.args[k], ctx.rd)
        info.accesses.append(
            MemAccess(
                call,
                block,
                obj,
                _rebind_index(ctx, call, record.index, seq),
                store=record.is_store,
                trace=(
                    (f"call to '{call.callee}' here", call.span),
                    *record.trace,
                ),
                summary_op=record.reduction_op,
            )
        )


def _rebind_index(
    ctx: _LoopContext, call: Call, index, seq: int
) -> AffineExpr | None:
    """Callee index summary -> caller-loop affine expression.

    Parameter terms become the affine images of the call arguments; the
    summary's slack interval becomes a fresh :class:`BoundedSym` so the
    subscript test samples it independently per iteration."""
    if index is None:
        return None
    out = AffineExpr(const=index.const)
    if (index.lo, index.hi) != (0, 0):
        out.add_term(BoundedSym(index.lo, index.hi, (id(call), seq)), 1)
    for k, coeff in index.terms:
        if k >= len(call.args):
            return None
        arg = ctx.affine_of(call.args[k], call)
        if arg is None:
            return None
        out = _combine(out, _scale(arg, coeff), 1)
    return out


def _difference_interval(
    ctx: _LoopContext, a: AffineExpr, b: AffineExpr
) -> tuple[int | None, int | None, int] | None:
    """Split ``a - b`` (evaluated at two different iterations of this
    loop) into a per-iteration stride and an interval for everything else.

    Returns ``(lo, hi, stride)`` such that the address difference between
    iteration ``k`` and ``k'`` is ``stride·(k - k') + D`` with
    ``D ∈ [lo, hi]`` (a None bound = unbounded); returns None when some
    term's behavior across iterations cannot be characterized.
    """
    stride_a = 0
    stride_b = 0
    lo: int | None = a.const - b.const
    hi: int | None = lo

    def widen(delta_lo: int | None, delta_hi: int | None) -> None:
        nonlocal lo, hi
        if lo is not None:
            lo = None if delta_lo is None else lo + delta_lo
        if hi is not None:
            hi = None if delta_hi is None else hi + delta_hi

    symbols = set(a.terms) | set(b.terms)
    for symbol in symbols:
        ca = a.terms.get(symbol, 0)
        cb = b.terms.get(symbol, 0)
        if isinstance(symbol, Register) and symbol in ctx.inductions:
            ind = ctx.inductions[symbol]
            if ind.step is None:
                return None  # symbolic stride: can't relate iterations
            stride_a += ca * ind.step
            stride_b += cb * ind.step
            # The variable's initial value is shared between the two
            # iterations: it cancels when the coefficients match.
            diff = ca - cb
            if diff != 0:
                if ind.init is not None:
                    widen(diff * ind.init, diff * ind.init)
                else:
                    widen(None, None)
            continue
        if isinstance(symbol, BoundedSym):
            # Callee-internal loop values: re-sampled independently from
            # their interval on each iteration of this loop (the callee
            # runs afresh per call), even for an access paired with
            # itself.
            if ca == 0 and cb == 0:
                continue
            samples = [
                ca * x1 - cb * x2
                for x1 in (symbol.lo, symbol.hi)
                for x2 in (symbol.lo, symbol.hi)
            ]
            widen(min(samples), max(samples))
            continue
        if isinstance(symbol, Register) and symbol in ctx.inner_inductions:
            # Inner-loop variables take two independent samples from
            # their value range at the two iterations.
            if ca == 0 and cb == 0:
                continue
            slo, shi = ctx.symbol_range(symbol)
            if slo is None or shi is None:
                widen(None, None)
                continue
            samples = [
                ca * x1 - cb * x2
                for x1 in (slo, shi)
                for x2 in (slo, shi)
            ]
            widen(min(samples), max(samples))
            continue
        # Shared loop-invariant symbol (an unwritten register, or a
        # unique loop-external definition): same value at both
        # iterations, so it cancels when the coefficients match.
        diff = ca - cb
        if diff != 0:
            widen(None, None)

    if stride_a != stride_b:
        return None  # the two accesses advance at different rates
    return lo, hi, stride_a


def _dependence_between(
    ctx: _LoopContext, a: MemAccess, b: MemAccess
) -> DependenceWitness | None:
    """Cross-iteration dependence between two accesses (≥1 store)."""
    if not may_alias(a.obj, b.obj):
        return None
    chain = [*a.chain, *b.chain]
    if a.obj.key != b.obj.key:
        return DependenceWitness(
            kind="may-alias",
            description=(
                f"{a.obj} and {b.obj} may name the same array; the "
                "accesses cannot be disambiguated"
            ),
            chain=chain,
        )
    if a.affine is None or b.affine is None:
        return DependenceWitness(
            kind="non-affine-subscript",
            description=(
                f"subscript of {a.obj} is not an affine function of the "
                "loop's induction variables (indirect or data-dependent "
                "indexing)"
            ),
            chain=chain,
        )
    split = _difference_interval(ctx, a.affine, b.affine)
    if split is None:
        return DependenceWitness(
            kind="array-dep",
            description=f"accesses to {a.obj} have unanalyzable strides",
            chain=chain,
        )
    lo, hi, stride = split
    if stride == 0:
        if lo == 0 and hi == 0:
            return DependenceWitness(
                kind="invariant-address",
                description=(
                    f"{a.obj} is accessed at the same (loop-invariant) "
                    "address in every iteration"
                ),
                chain=chain,
                distance=0,
            )
        if lo is not None and hi is not None and (lo > 0 or hi < 0):
            return None  # the addresses can never coincide
        return DependenceWitness(
            kind="array-dep",
            description=(
                f"accesses to {a.obj} do not advance with the loop and "
                "may collide across iterations"
            ),
            chain=chain,
        )
    # stride != 0: solve stride·Δ = -D for integer Δ ≠ 0, D ∈ [lo, hi].
    if lo is None or hi is None:
        return DependenceWitness(
            kind="array-dep",
            description=(
                f"accesses to {a.obj} may collide at an unknown "
                "iteration distance"
            ),
            chain=chain,
        )
    magnitude = abs(stride)
    m_min = -(-lo // magnitude)  # ceil(lo / |stride|)
    m_max = hi // magnitude  # floor(hi / |stride|)
    if m_min > m_max or (m_min == 0 and m_max == 0):
        return None  # only the same-iteration solution exists
    distance = None
    if lo == hi and lo % magnitude == 0:
        distance = abs(lo) // magnitude
    return DependenceWitness(
        kind="array-dep",
        description=(
            f"accesses to {a.obj} collide across iterations"
            + (f" at constant distance {distance}" if distance else "")
        ),
        chain=chain,
        distance=distance,
    )


def _is_cell_reduction(
    ctx: _LoopContext, store: MemAccess, load: MemAccess
) -> bool:
    """``cell ⊕= v`` on a loop-invariant address: the stored value comes
    from a reduction-op BinOp whose old-value operand is exactly this
    load (recognized via the lowering dep-break mark, or structurally).

    Call-derived pairs qualify when the callee summary flagged both
    halves of the update with the same operator at the same call site
    (reduction-through-call)."""
    if isinstance(store.instr, Call) or isinstance(load.instr, Call):
        # Call-derived synthetic accesses: only the summary's own
        # reduction marks qualify — there is no stored-value chain to
        # inspect on this side of the call.
        return (
            store.summary_op is not None
            and store.summary_op == load.summary_op
            and store.instr is load.instr
        )
    value = store.instr.value
    if not isinstance(value, Register):
        return False
    defs = ctx.rd.reaching(store.instr, value)
    if len(defs) != 1:
        return False
    update = next(iter(defs)).instr
    if not isinstance(update, BinOp):
        return False
    loaded = load.instr.result
    if update.dep_break == "reduction":
        old = update.operands[update.break_operand]
        return old is loaded
    if update.op not in REDUCTION_OPS:
        return False
    return update.lhs is loaded or update.rhs is loaded


def _analyze_memory(ctx: _LoopContext, info: LoopDependenceInfo) -> None:
    accesses = info.accesses
    reduction_pairs: set[int] = set()
    # First pass: recognize fixed-cell reduction pairs (s += v on a scalar
    # global, or a[j] += v with j loop-invariant) so they do not surface
    # as invariant-address dependences.
    for store in accesses:
        if not store.is_store or store.affine is None:
            continue
        for load in accesses:
            if load.is_store or load.obj.key != store.obj.key:
                continue
            if load.affine is None:
                continue
            split = _difference_interval(ctx, store.affine, load.affine)
            if split != (0, 0, 0):
                continue  # not provably the same fixed cell
            if not _is_cell_reduction(ctx, store, load):
                continue
            if not _only_reduction_accesses(info, store, load):
                continue
            reduction_pairs.add(id(store))
            reduction_pairs.add(id(load))
            info.reductions[store.obj.name.lstrip("@")] = store.instr

    reported: set[tuple] = set()
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if not (a.is_store or b.is_store):
                continue
            if id(a) in reduction_pairs and id(b) in reduction_pairs:
                continue
            witness = _dependence_between(ctx, a, b)
            if witness is None:
                continue
            key = (witness.kind, a.obj.key, b.obj.key)
            if key in reported:
                continue
            reported.add(key)
            info.witnesses.append(witness)


def _only_reduction_accesses(
    info: LoopDependenceInfo, store: MemAccess, load: MemAccess
) -> bool:
    """The reduction cell's object is touched only by this update pair."""
    for access in info.accesses:
        if access.obj.key != store.obj.key:
            continue
        if access is store or access is load:
            continue
        return False
    return True


# ----------------------------------------------------------------------
# Calls and exits
# ----------------------------------------------------------------------


def function_purity(module: Module) -> dict[str, bool]:
    """Which user functions are pure enough to call from a DOALL loop.

    Pure means: no global loads/stores, no array parameters (which could
    alias the loop's arrays), no impure builtins, and only pure callees.
    Writes to a function's own allocas are fine — they are private.

    One pass over the call graph's SCC condensation (callee-first):
    a component is pure iff every member meets the direct conditions
    and every out-of-component callee is pure — mutual recursion among
    effect-free functions stays pure, exactly as the old fixpoint had it.
    """
    from repro.analysis.callgraph import build_call_graph

    graph = build_call_graph(module)
    direct: dict[str, bool] = {}
    for name, function in module.functions.items():
        pure = not any(
            isinstance(param.type, ArrayType) for param in function.params
        )
        if pure:
            for block in function.blocks:
                for instr in block.instructions:
                    if isinstance(instr, (Load, Store)) and isinstance(
                        instr.mem, GlobalRef
                    ):
                        pure = False
                    elif isinstance(instr, Call) and instr.is_builtin:
                        if instr.callee not in PURE_BUILTINS:
                            pure = False
                if not pure:
                    break
        direct[name] = pure

    purity: dict[str, bool] = {}
    for component in graph.sccs():
        members = [n for n in component if n in module.functions]
        pure = all(direct.get(n, False) for n in members)
        if pure:
            for name in members:
                for callee in graph.callees.get(name, set()):
                    if callee in component:
                        continue
                    if not purity.get(callee, False):
                        pure = False
                        break
                if not pure:
                    break
        for name in members:
            purity[name] = pure
    return purity


def _impure_call_witness(instr: Call, description: str) -> DependenceWitness:
    return DependenceWitness(
        kind="impure-call",
        description=description,
        chain=[(f"call to '{instr.callee}'", instr.span)],
    )


def _analyze_calls(
    ctx: _LoopContext,
    info: LoopDependenceInfo,
    purity: dict[str, bool],
) -> None:
    for block in ctx.blocks:
        for instr in block.instructions:
            if not isinstance(instr, Call):
                continue
            if instr.is_builtin:
                if instr.callee in PURE_BUILTINS:
                    continue
                info.impure_calls.append(instr)
                info.witnesses.append(
                    _impure_call_witness(
                        instr,
                        f"builtin '{instr.callee}' has observable "
                        "state (RNG or I/O); iterations are ordered "
                        "through it",
                    )
                )
            elif ctx.summaries is not None:
                summary = ctx.summaries.get(instr.callee)
                if summary is not None and summary.transparent:
                    continue  # effects already inlined as accesses
                reasons = (
                    "; ".join(summary.reasons)
                    if summary is not None and summary.reasons
                    else "no summary"
                )
                info.impure_calls.append(instr)
                info.witnesses.append(
                    _impure_call_witness(
                        instr,
                        f"call to '{instr.callee}' cannot be "
                        f"summarized ({reasons})",
                    )
                )
            elif not purity.get(instr.callee, False):
                info.impure_calls.append(instr)
                info.witnesses.append(
                    _impure_call_witness(
                        instr,
                        f"call to '{instr.callee}' may read or write "
                        "shared state (globals or array arguments)",
                    )
                )


def _count_exits(loop: Loop) -> int:
    exits = 0
    for block in loop.blocks:
        terminator = block.terminator
        if terminator is None:
            continue
        for successor in terminator.successors:
            if successor not in loop.blocks:
                exits += 1
    return exits


# ----------------------------------------------------------------------
# Verdict assembly
# ----------------------------------------------------------------------

#: witness kinds that *characterize* the dependence (a known recurrence
#: shape): the loop remains pipelineable (DOACROSS). Array dependences
#: count as characterized only with a known constant distance.
_CHARACTERIZED = frozenset({"scalar-recurrence", "invariant-address"})


def _assemble_verdict(info: LoopDependenceInfo) -> RegionVerdict:
    witnesses = list(info.witnesses)
    uncharacterized = [
        w
        for w in witnesses
        if w.kind not in _CHARACTERIZED
        and not (w.kind == "array-dep" and w.distance is not None)
    ]
    if uncharacterized:
        return RegionVerdict(
            Verdict.UNSAFE,
            reduction_vars=tuple(sorted(info.reductions)),
            witnesses=witnesses,
        )
    if witnesses:
        return RegionVerdict(
            Verdict.DOACROSS_ONLY,
            reduction_vars=tuple(sorted(info.reductions)),
            witnesses=witnesses,
        )
    if info.exit_count > 1:
        header = info.loop.header
        span = (
            header.terminator.span
            if header.terminator is not None
            else header.instructions[0].span
        )
        witness = DependenceWitness(
            kind="early-exit",
            description=(
                "loop has data-dependent early exits; the trip count is "
                "only known by executing iterations in order"
            ),
            chain=[("loop with multiple exit edges", span)],
        )
        return RegionVerdict(
            Verdict.DOACROSS_ONLY,
            reduction_vars=tuple(sorted(info.reductions)),
            witnesses=[witness],
        )
    if info.reductions:
        return RegionVerdict(
            Verdict.SAFE_WITH_REDUCTION,
            reduction_vars=tuple(sorted(info.reductions)),
        )
    return RegionVerdict(Verdict.SAFE_DOALL)


def iterations_structurally_identical(info: LoopDependenceInfo) -> bool:
    """Every iteration of this loop executes the same instruction sequence.

    True when the loop body is straight-line — no inner loops, no branches
    beyond the loop's own exit test, no calls — and every statically
    detected induction/reduction update also carries the lowering-applied
    ``dep_break`` mark (so the dynamic runtime breaks exactly the
    dependences the static analysis discounted). For such loops a static
    safety verdict predicts the *dynamic* DOALL verdict too: balanced
    identical iterations with no cross-iteration dependences must measure
    self-parallelism ≈ iteration count. Imbalanced-but-safe loops (e.g.
    one heavy iteration behind an ``if``) are excluded — their measured
    self-parallelism legitimately collapses even though they are safe.
    """
    from repro.ir.instructions import Branch

    loop = info.loop
    if loop.children:
        return False
    branch_count = 0
    for block in loop.blocks:
        if isinstance(block.terminator, Branch):
            branch_count += 1
        for instr in block.instructions:
            if isinstance(instr, Call):
                return False
    if branch_count > 1:
        return False
    for induction in info.inductions.values():
        if induction.update.dep_break is None:
            return False
    for update in info.reductions.values():
        if getattr(update, "dep_break", None) != "reduction":
            return False
    return True


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def analyze_function_dependences(
    function: Function,
    module: Module | None = None,
    rd: ReachingDefinitions | None = None,
    purity: dict[str, bool] | None = None,
    summaries: dict | None = None,
) -> list[LoopDependenceInfo]:
    """Classify every natural loop of ``function``; innermost first.

    When ``summaries`` (or a ``module`` to compute them from) is
    available, calls to summarizable functions contribute synthetic
    accesses instead of impure-call witnesses; an explicit ``purity``
    map restores the old binary treatment (legacy callers/tests).
    """
    rd = rd or ReachingDefinitions(function)
    forest = find_natural_loops(function)
    if summaries is None and purity is None and module is not None:
        from repro.analysis.summaries import compute_module_summaries

        summaries = compute_module_summaries(module)
    if purity is None:
        purity = {}

    induction_of = {
        loop: _detect_inductions(loop, rd) for loop in forest.loops
    }

    out: list[LoopDependenceInfo] = []
    for loop in forest.loops:
        ctx = _LoopContext(
            function, loop, rd, forest, induction_of, summaries
        )
        info = LoopDependenceInfo(
            loop=loop,
            function=function,
            region_id=getattr(loop.header, "region_id", -1),
            inductions=ctx.inductions,
        )
        info.exit_count = _count_exits(loop)
        _classify_scalars(ctx, info)
        _collect_accesses(ctx, info)
        _analyze_memory(ctx, info)
        _analyze_calls(ctx, info, purity)
        info.verdict = _assemble_verdict(info)
        out.append(info)
    return out
