"""Kremlin reproduction: hierarchical critical path analysis,
self-parallelism, and parallelism planning for serial programs.

Reproduces *Kremlin: Rethinking and Rebooting gprof for the Multicore Age*
(Garcia, Jeon, Louie, Taylor — PLDI 2011).

Quickstart::

    from repro import KremlinSession, PlanOptions

    session = KremlinSession(plan_options=PlanOptions(personality="openmp"))
    report = session.analyze(source_code)
    print(report.render_plan())        # the Figure 3 table
    for item in report.plan:           # ranked regions to parallelize
        print(item.region.name, item.self_parallelism)

(``repro.analyze(source)`` still works as a one-shot shim; its legacy
keyword arguments are deprecated in favour of the session's frozen
option dataclasses.)

The pipeline underneath: ``kremlin_cc`` compiles MiniC source to
instrumented IR; ``profile_program`` executes it under the KremLib HCPA
runtime, producing a compressed parallelism profile; ``aggregate_profile``
turns that into per-region work/coverage/self-parallelism; a planner
personality (OpenMP, Cilk++, or the gprof baseline) selects and ranks the
regions worth parallelizing; and ``simulate_plan`` evaluates any plan on a
model multicore.
"""

from __future__ import annotations

import warnings

from repro.api import (
    CompileOptions,
    ExecutionReport,
    KremlinReport,
    KremlinSession,
    ParallelOptions,
    PlanOptions,
    ProfileOptions,
    analyze_with_options,
)
from repro.api_types import (
    API_SCHEMA_VERSION,
    ApiPayloadError,
    CheckRequest,
    CheckResult,
    CompileRequest,
    CompileResult,
    PlanRequest,
    PlanResponse,
    ProfileAck,
    ProfileSubmit,
    SchemaVersionError,
    SummaryRequest,
    SummaryResponse,
)
from repro.exec_model import (
    DEFAULT_MACHINE,
    MachineModel,
    SimulationResult,
    best_configuration,
    simulate_plan,
)
from repro.hcpa import (
    CompressionStats,
    ParallelismProfile,
    RegionProfile,
    aggregate_profile,
    compression_stats,
    self_parallelism,
    total_parallelism,
)
from repro.hcpa import (
    ProfileVersionError,
    load_profile,
    merge_profiles,
    save_profile,
)
from repro.hcpa.aggregate import AggregatedProfile
from repro.instrument import CompiledProgram, StaticRegionTree, kremlin_cc
from repro.interp import Interpreter, RunResult
from repro.kremlib import KremlinProfiler, profile_program
from repro.planner import (
    CilkPlanner,
    GprofPlanner,
    OpenMPPlanner,
    ParallelismPlan,
    PlanItem,
    Planner,
    PlannerPersonality,
    SelfParallelismFilterPlanner,
    available_personalities,
    create_planner,
    register_personality,
)
from repro.report import format_flat_profile, format_plan, format_region_table

__version__ = "1.1.0"


def make_planner(personality: str) -> Planner:
    """Instantiate a planner by personality name (registry lookup)."""
    return create_planner(personality)


_UNSET = object()


def analyze(
    source: str,
    filename=_UNSET,
    personality=_UNSET,
    entry=_UNSET,
    args=_UNSET,
    max_depth=_UNSET,
) -> KremlinReport:
    """One-shot pipeline: compile, profile, aggregate, and plan.

    Thin shim over :class:`repro.api.KremlinSession`. The loose keyword
    arguments are deprecated: build a session with
    :class:`~repro.api.CompileOptions` / :class:`~repro.api.ProfileOptions`
    / :class:`~repro.api.PlanOptions` instead. ``analyze(source)`` with no
    legacy kwargs stays warning-free.
    """
    legacy = {
        name: value
        for name, value in (
            ("filename", filename),
            ("personality", personality),
            ("entry", entry),
            ("args", args),
            ("max_depth", max_depth),
        )
        if value is not _UNSET
    }
    if legacy:
        warnings.warn(
            f"repro.analyze() keyword(s) {sorted(legacy)} are deprecated; "
            "use repro.KremlinSession with CompileOptions/ProfileOptions/"
            "PlanOptions instead",
            DeprecationWarning,
            stacklevel=2,
        )
    session = KremlinSession(
        compile_options=CompileOptions(
            filename=legacy.get("filename", "<input>")
        ),
        profile_options=ProfileOptions(
            entry=legacy.get("entry", "main"),
            args=legacy.get("args", ()),
            max_depth=legacy.get("max_depth"),
        ),
        plan_options=PlanOptions(
            personality=legacy.get("personality", "openmp")
        ),
    )
    return session.analyze(source)


__all__ = [
    "API_SCHEMA_VERSION",
    "AggregatedProfile",
    "ApiPayloadError",
    "CheckRequest",
    "CheckResult",
    "CilkPlanner",
    "CompileOptions",
    "CompileRequest",
    "CompileResult",
    "CompiledProgram",
    "CompressionStats",
    "DEFAULT_MACHINE",
    "ExecutionReport",
    "GprofPlanner",
    "Interpreter",
    "KremlinProfiler",
    "KremlinReport",
    "KremlinSession",
    "MachineModel",
    "OpenMPPlanner",
    "ParallelOptions",
    "ParallelismPlan",
    "ParallelismProfile",
    "PlanItem",
    "PlanOptions",
    "PlanRequest",
    "PlanResponse",
    "ProfileAck",
    "ProfileSubmit",
    "SchemaVersionError",
    "SummaryRequest",
    "SummaryResponse",
    "Planner",
    "PlannerPersonality",
    "ProfileOptions",
    "ProfileVersionError",
    "RegionProfile",
    "RunResult",
    "SelfParallelismFilterPlanner",
    "SimulationResult",
    "StaticRegionTree",
    "aggregate_profile",
    "analyze",
    "analyze_with_options",
    "available_personalities",
    "best_configuration",
    "compression_stats",
    "create_planner",
    "format_flat_profile",
    "format_plan",
    "format_region_table",
    "kremlin_cc",
    "load_profile",
    "merge_profiles",
    "save_profile",
    "make_planner",
    "profile_program",
    "register_personality",
    "self_parallelism",
    "simulate_plan",
    "total_parallelism",
]
