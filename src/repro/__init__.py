"""Kremlin reproduction: hierarchical critical path analysis,
self-parallelism, and parallelism planning for serial programs.

Reproduces *Kremlin: Rethinking and Rebooting gprof for the Multicore Age*
(Garcia, Jeon, Louie, Taylor — PLDI 2011).

Quickstart::

    from repro import analyze

    report = analyze(source_code, personality="openmp")
    print(report.render_plan())        # the Figure 3 table
    for item in report.plan:           # ranked regions to parallelize
        print(item.region.name, item.self_parallelism)

The pipeline underneath: ``kremlin_cc`` compiles MiniC source to
instrumented IR; ``profile_program`` executes it under the KremLib HCPA
runtime, producing a compressed parallelism profile; ``aggregate_profile``
turns that into per-region work/coverage/self-parallelism; a planner
personality (OpenMP, Cilk++, or the gprof baseline) selects and ranks the
regions worth parallelizing; and ``simulate_plan`` evaluates any plan on a
model multicore.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec_model import (
    DEFAULT_MACHINE,
    MachineModel,
    SimulationResult,
    best_configuration,
    simulate_plan,
)
from repro.hcpa import (
    CompressionStats,
    ParallelismProfile,
    RegionProfile,
    aggregate_profile,
    compression_stats,
    self_parallelism,
    total_parallelism,
)
from repro.hcpa import (
    load_profile,
    merge_profiles,
    save_profile,
)
from repro.hcpa.aggregate import AggregatedProfile
from repro.instrument import CompiledProgram, StaticRegionTree, kremlin_cc
from repro.interp import Interpreter, RunResult
from repro.kremlib import KremlinProfiler, profile_program
from repro.planner import (
    CilkPlanner,
    GprofPlanner,
    OpenMPPlanner,
    ParallelismPlan,
    PlanItem,
    Planner,
    PlannerPersonality,
    SelfParallelismFilterPlanner,
)
from repro.report import format_flat_profile, format_plan, format_region_table

__version__ = "1.0.0"

_PLANNERS = {
    "openmp": OpenMPPlanner,
    "cilk": CilkPlanner,
    "gprof": GprofPlanner,
    "sp-filter": SelfParallelismFilterPlanner,
}


def make_planner(personality: str) -> Planner:
    """Instantiate a planner by personality name."""
    try:
        return _PLANNERS[personality]()
    except KeyError:
        raise ValueError(
            f"unknown personality {personality!r}; "
            f"choose from {sorted(_PLANNERS)}"
        ) from None


@dataclass
class KremlinReport:
    """Everything one ``analyze`` call produces."""

    program: CompiledProgram
    profile: ParallelismProfile
    aggregated: AggregatedProfile
    plan: ParallelismPlan
    run: RunResult

    def render_plan(self, limit: int | None = None) -> str:
        return format_plan(self.plan, limit)

    def render_regions(self) -> str:
        return format_region_table(self.aggregated)

    @property
    def compression(self) -> CompressionStats:
        return compression_stats(self.profile)

    def replan(
        self, personality: str | None = None, exclude: set[int] | None = None
    ) -> ParallelismPlan:
        """Re-run planning, optionally with a different personality or an
        exclusion list (the paper's §3 workflow)."""
        planner = make_planner(personality or self.plan.personality)
        excluded = frozenset(self.plan.excluded | (exclude or set()))
        new_plan = planner.plan(self.aggregated, excluded)
        new_plan.program_name = self.plan.program_name
        return new_plan


def analyze(
    source: str,
    filename: str = "<input>",
    personality: str = "openmp",
    entry: str = "main",
    args: tuple = (),
    max_depth: int | None = None,
) -> KremlinReport:
    """One-shot pipeline: compile, profile, aggregate, and plan."""
    program = kremlin_cc(source, filename)
    profile, run = profile_program(
        program, entry=entry, args=args, max_depth=max_depth
    )
    aggregated = aggregate_profile(profile)
    plan = make_planner(personality).plan(aggregated)
    plan.program_name = filename
    return KremlinReport(
        program=program,
        profile=profile,
        aggregated=aggregated,
        plan=plan,
        run=run,
    )


__all__ = [
    "AggregatedProfile",
    "CilkPlanner",
    "CompiledProgram",
    "CompressionStats",
    "DEFAULT_MACHINE",
    "GprofPlanner",
    "Interpreter",
    "KremlinProfiler",
    "KremlinReport",
    "MachineModel",
    "OpenMPPlanner",
    "ParallelismPlan",
    "ParallelismProfile",
    "PlanItem",
    "Planner",
    "PlannerPersonality",
    "RegionProfile",
    "RunResult",
    "SelfParallelismFilterPlanner",
    "SimulationResult",
    "StaticRegionTree",
    "aggregate_profile",
    "analyze",
    "best_configuration",
    "compression_stats",
    "format_flat_profile",
    "format_plan",
    "format_region_table",
    "kremlin_cc",
    "load_profile",
    "merge_profiles",
    "save_profile",
    "make_planner",
    "profile_program",
    "self_parallelism",
    "simulate_plan",
    "total_parallelism",
]
